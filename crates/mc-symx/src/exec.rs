//! Symbolic execution of a sliced witness path.
//!
//! The executor walks the kept [`PathOp`]s forward with a store mapping
//! lvalue keys to [`LinExpr`]s over fresh symbols. Branch and switch
//! decisions become linear constraints; everything the linear fragment
//! cannot express degrades *monotonically toward satisfiability*:
//!
//! - a non-linear value is simply unknown (no constraint is emitted for a
//!   condition that mentions it);
//! - a call that cannot be inlined havocs every global-like binding, so
//!   later reads are fresh symbols unrelated to earlier ones;
//! - a store through an unresolvable lvalue havocs the whole store.
//!
//! Havoc is *forgetting*, and forgetting only ever removes constraints, so
//! an `UNSAT` verdict survives every approximation: the refuted path is
//! infeasible under any behavior of the parts we could not model.
//!
//! Straight-line callees found through [`World::function`] are inlined
//! (parameters bound to argument values, locals renamed into a private
//! frame) instead of havocked — this is how an interprocedural witness
//! splices its callee's constraints into the path.
//!
//! **Wrapping semantics.** `mc-sim` executes with wrapping `i64`
//! arithmetic, while the solver reasons over unbounded integers. Wrapping
//! `+`/`-`/`*` is exact arithmetic modulo 2^64, so a chain of them always
//! agrees with the unbounded linear form *modulo 2^64* — intermediate
//! overflow is harmless, and the two agree outright whenever the final
//! value lies in the `i64` range. Comparisons, however, observe the
//! actual (possibly wrapped) `i64` value, so every constraint whose
//! operand can leave the range (under any `i64` valuation of the
//! symbols) carries that operand as a *range guard*, and [`Exec::decide`]
//! refutes only when the path is infeasible with all guards in range
//! *and* no guard can leave the range in the first place. A path
//! feasible solely through wraparound (`gNak = gCredit + 1;` then a
//! taken `gNak <= gCredit`, concretely satisfied at
//! `gCredit == i64::MAX`) therefore stays undecided instead of being
//! wrongly refuted. Non-congruent operators (`/`, `%`, `>>`, bitwise)
//! only ever fold in-range constants, where wrapping cannot occur.

use crate::path::PathOp;
use crate::slice::{for_each_child, Scope};
use crate::solver::{self, Constraint, LinExpr, SolveResult, SymId};
use crate::{Verdict, World};
use mc_ast::{BinaryOp, Expr, ExprKind, Function, Initializer, Stmt, StmtKind, UnaryOp};
use mc_cfg::feasibility::{const_of, key_of, Const};
use std::collections::{BTreeMap, BTreeSet};

/// Separator for inline-frame-private keys; cannot occur in a C lvalue key.
const FRAME_SEP: char = '\u{1}';

/// Maximum callee-inlining depth.
const MAX_INLINE_DEPTH: usize = 4;

/// One symbol's bookkeeping.
struct SymInfo {
    /// The key or constant the symbol stands for.
    name: String,
    /// Whether the symbol is the *initial* value of a plain global — the
    /// only thing a concrete replay can set up via `set_global`.
    replayable: bool,
}

/// A lexical frame: the root function or one inlined callee instance.
struct Frame {
    /// Store-key prefix (empty for the root frame).
    prefix: String,
    /// Names that resolve inside this frame rather than globally.
    locals: BTreeSet<String>,
    /// Inlining depth (root is 0).
    depth: usize,
}

impl Frame {
    fn resolve(&self, key: &str) -> String {
        let root = key.split(['.', '-']).next().unwrap_or(key);
        if self.locals.contains(root) {
            format!("{}{}", self.prefix, key)
        } else {
            key.to_string()
        }
    }
}

struct Exec<'w> {
    world: &'w dyn World,
    scope: &'w Scope,
    bindings: BTreeMap<String, LinExpr>,
    syms: Vec<SymInfo>,
    const_syms: BTreeMap<String, SymId>,
    /// Each path constraint with its *range guards*: the operand values
    /// whose conservative range can leave `i64`, so the constraint is only
    /// exact when those values stay in range (see the module doc on
    /// wrapping semantics). An empty guard list means the constraint is
    /// exact for every execution.
    constraints: Vec<(Constraint, Vec<LinExpr>)>,
    /// Set once a non-inlined call has run: later first-reads of globals
    /// observe a post-call value, not the initial one, and are therefore
    /// not replayable.
    call_seen: bool,
    /// Monotonic counter for unique inline-frame prefixes.
    frames: usize,
}

impl<'w> Exec<'w> {
    fn new(scope: &'w Scope, world: &'w dyn World) -> Exec<'w> {
        Exec {
            world,
            scope,
            bindings: BTreeMap::new(),
            syms: Vec::new(),
            const_syms: BTreeMap::new(),
            constraints: Vec::new(),
            call_seen: false,
            frames: 0,
        }
    }

    fn fresh(&mut self, name: String, replayable: bool) -> SymId {
        let id = self.syms.len() as SymId;
        self.syms.push(SymInfo { name, replayable });
        id
    }

    /// Reads `key` (already frame-resolved), creating an input symbol on
    /// first contact.
    fn read(&mut self, key: &str) -> LinExpr {
        if let Some(b) = self.bindings.get(key) {
            return b.clone();
        }
        let plain = !key.contains(FRAME_SEP) && !key.contains('.') && !key.contains("->");
        let replayable = plain && !self.scope.locals.contains(key) && !self.call_seen;
        let id = self.fresh(key.to_string(), replayable);
        let e = LinExpr::sym(id);
        self.bindings.insert(key.to_string(), e.clone());
        e
    }

    /// Rebinds `key` to an unconstrained fresh value.
    fn havoc_key(&mut self, key: &str) -> LinExpr {
        let id = self.fresh(format!("havoc:{key}"), false);
        let e = LinExpr::sym(id);
        self.bindings.insert(key.to_string(), e.clone());
        e
    }

    /// Forgets every binding a call could have written: global-like keys.
    /// Frame-private (inlined-callee) keys survive — inlining rejects
    /// address-taking, so nothing else can name them.
    fn havoc_globals(&mut self) {
        self.call_seen = true;
        // SHOUTING-named globals that are not true constants can be
        // assigned by the callee too: forget the stable symbols so reads
        // on either side of the call are unrelated. Constants the World
        // knows by value never reach `const_syms` and keep their value.
        self.const_syms.clear();
        let scope = self.scope;
        self.bindings
            .retain(|k, _| k.contains(FRAME_SEP) || !scope.is_globalish(k));
    }

    /// Forgets the whole store (a write through an unresolvable lvalue may
    /// alias anything, including frame-private slots via pointers). A
    /// write to a SHOUTING-named lvalue lands here via `key_of == None`,
    /// so the stable constant symbols must be forgotten as well.
    fn havoc_all(&mut self) {
        self.call_seen = true;
        self.const_syms.clear();
        self.bindings.clear();
    }

    /// The symbolic value of a manifest constant: the concrete value when
    /// the [`World`] knows it, else one stable symbol per name (two uses of
    /// `W_WAIT` are equal even when its value is unknown).
    fn manifest(&mut self, name: &str) -> LinExpr {
        if let Some(v) = self.world.constant(name) {
            return LinExpr::constant(v as i128);
        }
        if let Some(&id) = self.const_syms.get(name) {
            return LinExpr::sym(id);
        }
        let id = self.fresh(name.to_string(), false);
        self.const_syms.insert(name.to_string(), id);
        LinExpr::sym(id)
    }

    /// Evaluates `e` for value *and* side effects. `None` means the value
    /// is outside the linear fragment; effects (stores, havocs) have still
    /// been applied, which is what keeps approximation sound.
    fn eval(&mut self, e: &Expr, frame: &Frame) -> Option<LinExpr> {
        if let Some(c) = const_of(e) {
            return Some(match c {
                Const::Int(v) => LinExpr::constant(v as i128),
                Const::Sym(name) => self.manifest(&name),
            });
        }
        match &e.kind {
            ExprKind::IntLit(..)
            | ExprKind::FloatLit(..)
            | ExprKind::CharLit(..)
            | ExprKind::StrLit(..)
            | ExprKind::SizeofType(_)
            | ExprKind::Wildcard(_) => None,
            ExprKind::Ident(_) | ExprKind::Member { .. } => match key_of(e) {
                Some(k) => {
                    let rk = frame.resolve(&k);
                    Some(self.read(&rk))
                }
                None => {
                    self.eval_children(e, frame);
                    None
                }
            },
            ExprKind::Call { callee, args } => self.call(callee, args, frame),
            ExprKind::Unary { op, operand } => match op {
                UnaryOp::Neg => {
                    let v = self.eval(operand, frame)?;
                    v.mul_const(-1)
                }
                UnaryOp::PreInc => self.incdec(operand, 1, true, frame),
                UnaryOp::PreDec => self.incdec(operand, -1, true, frame),
                UnaryOp::Not | UnaryOp::BitNot | UnaryOp::Deref | UnaryOp::AddrOf => {
                    self.eval_children(e, frame);
                    None
                }
            },
            ExprKind::Postfix { operand, inc } => {
                self.incdec(operand, if *inc { 1 } else { -1 }, false, frame)
            }
            ExprKind::Binary { op, lhs, rhs } => {
                if matches!(op, BinaryOp::LogAnd | BinaryOp::LogOr) {
                    self.eval_children(e, frame);
                    return None;
                }
                let l = self.eval(lhs, frame);
                let r = self.eval(rhs, frame);
                let (l, r) = (l?, r?);
                self.combine(*op, &l, &r)
            }
            ExprKind::Assign { op, lhs, rhs } => {
                let rhs_v = self.eval(rhs, frame);
                match key_of(lhs) {
                    Some(k) => {
                        let rk = frame.resolve(&k);
                        let val = match op {
                            None => rhs_v,
                            Some(o) => {
                                let cur = self.read(&rk);
                                rhs_v.and_then(|r| self.combine(*o, &cur, &r))
                            }
                        };
                        Some(match val {
                            Some(v) => {
                                self.bindings.insert(rk, v.clone());
                                v
                            }
                            None => self.havoc_key(&rk),
                        })
                    }
                    None => {
                        self.eval_children(lhs, frame);
                        self.havoc_all();
                        None
                    }
                }
            }
            ExprKind::Ternary { .. } | ExprKind::Index { .. } => {
                self.eval_children(e, frame);
                None
            }
            ExprKind::Cast { expr, .. } => self.eval(expr, frame),
            ExprKind::Comma(a, b) => {
                let _ = self.eval(a, frame);
                self.eval(b, frame)
            }
        }
    }

    /// Evaluates every direct subexpression for side effects only.
    fn eval_children(&mut self, e: &Expr, frame: &Frame) {
        let mut children = Vec::new();
        for_each_child(e, &mut |c| children.push(c.clone()));
        for c in children {
            let _ = self.eval(&c, frame);
        }
    }

    /// Pushes a path constraint derived from comparing (or truth-testing)
    /// the given operand values. Operands whose conservative range can
    /// leave `i64` become range guards on the constraint: wrapping
    /// arithmetic agrees with the unbounded linear form exactly when the
    /// compared values are in range.
    fn push_cmp(&mut self, c: Constraint, operands: &[&LinExpr]) {
        let guards = operands
            .iter()
            .filter(|e| !fits_i64(e))
            .map(|e| (*e).clone())
            .collect();
        self.constraints.push((c, guards));
    }

    /// Combines two linear values. `+`, `-`, `*` and `<<` build the exact
    /// unbounded form — congruent to `mc-sim`'s wrapping result modulo
    /// 2^64, so safe to compose (only *uses* need range guards). The
    /// non-congruent operators fold only in-range constants, where
    /// wrapping cannot occur.
    fn combine(&mut self, op: BinaryOp, l: &LinExpr, r: &LinExpr) -> Option<LinExpr> {
        if matches!(
            op,
            BinaryOp::Div
                | BinaryOp::Rem
                | BinaryOp::Shr
                | BinaryOp::BitAnd
                | BinaryOp::BitOr
                | BinaryOp::BitXor
                | BinaryOp::Lt
                | BinaryOp::Gt
                | BinaryOp::Le
                | BinaryOp::Ge
                | BinaryOp::Eq
                | BinaryOp::Ne
        ) && !(fits_i64(l) && fits_i64(r))
        {
            return None;
        }
        match op {
            BinaryOp::Add => l.add(r),
            BinaryOp::Sub => l.sub(r),
            BinaryOp::Mul => {
                if r.is_const() {
                    l.mul_const(r.constant)
                } else if l.is_const() {
                    r.mul_const(l.constant)
                } else {
                    None
                }
            }
            BinaryOp::Shl => {
                if r.is_const() && (0..=62).contains(&r.constant) {
                    l.mul_const(1i128 << r.constant)
                } else {
                    None
                }
            }
            BinaryOp::Div => {
                if l.is_const() && r.is_const() && r.constant != 0 {
                    Some(LinExpr::constant(l.constant / r.constant))
                } else {
                    None
                }
            }
            BinaryOp::Rem => {
                if l.is_const() && r.is_const() && r.constant != 0 {
                    Some(LinExpr::constant(l.constant % r.constant))
                } else {
                    None
                }
            }
            _ => {
                if l.is_const() && r.is_const() {
                    let (a, b) = (l.constant, r.constant);
                    let v = match op {
                        BinaryOp::Shr => a.checked_shr(u32::try_from(b).ok()?)?,
                        BinaryOp::BitAnd => a & b,
                        BinaryOp::BitOr => a | b,
                        BinaryOp::BitXor => a ^ b,
                        BinaryOp::Lt => i128::from(a < b),
                        BinaryOp::Gt => i128::from(a > b),
                        BinaryOp::Le => i128::from(a <= b),
                        BinaryOp::Ge => i128::from(a >= b),
                        BinaryOp::Eq => i128::from(a == b),
                        BinaryOp::Ne => i128::from(a != b),
                        _ => return None,
                    };
                    Some(LinExpr::constant(v))
                } else {
                    None
                }
            }
        }
    }

    fn incdec(&mut self, operand: &Expr, delta: i128, pre: bool, frame: &Frame) -> Option<LinExpr> {
        match key_of(operand) {
            Some(k) => {
                let rk = frame.resolve(&k);
                let old = self.read(&rk);
                match old.add(&LinExpr::constant(delta)) {
                    Some(new) => {
                        self.bindings.insert(rk, new.clone());
                        Some(if pre { new } else { old })
                    }
                    None => {
                        self.havoc_key(&rk);
                        None
                    }
                }
            }
            None => {
                self.eval_children(operand, frame);
                self.havoc_all();
                None
            }
        }
    }

    fn call(&mut self, callee: &Expr, args: &[Expr], frame: &Frame) -> Option<LinExpr> {
        let arg_vals: Vec<Option<LinExpr>> = args.iter().map(|a| self.eval(a, frame)).collect();
        let name = match &callee.kind {
            ExprKind::Ident(n) => n.clone(),
            _ => {
                let _ = self.eval(callee, frame);
                self.havoc_globals();
                return Some(LinExpr::sym(self.fresh("ret:?".to_string(), false)));
            }
        };
        if frame.depth < MAX_INLINE_DEPTH {
            if let Some(f) = self.world.function(&name) {
                if inlinable(f) {
                    return Some(self.inline(f, &arg_vals, frame.depth + 1));
                }
            }
        }
        self.havoc_globals();
        Some(LinExpr::sym(self.fresh(format!("ret:{name}"), false)))
    }

    /// Runs a straight-line callee in a private frame, sharing the global
    /// store — the interprocedural constraint splice.
    fn inline(&mut self, f: &Function, arg_vals: &[Option<LinExpr>], depth: usize) -> LinExpr {
        self.frames += 1;
        let callee_scope = Scope::of(f);
        let frame = Frame {
            prefix: format!("{}{}{}", self.frames, f.name, FRAME_SEP),
            locals: callee_scope.locals,
            depth,
        };
        for (p, v) in f.params.iter().zip(arg_vals) {
            if p.name.is_empty() {
                continue;
            }
            let rk = frame.resolve(&p.name);
            match v {
                Some(v) => {
                    self.bindings.insert(rk, v.clone());
                }
                None => {
                    self.havoc_key(&rk);
                }
            }
        }
        for s in &f.body {
            if let Some(ret) = self.inline_stmt(s, &frame) {
                return ret;
            }
        }
        LinExpr::sym(self.fresh(format!("ret:{}", f.name), false))
    }

    /// Executes one statement of an inlined body. `Some` is the returned
    /// value once a `return` runs.
    fn inline_stmt(&mut self, s: &Stmt, frame: &Frame) -> Option<LinExpr> {
        match &s.kind {
            StmtKind::Expr(e) => {
                let _ = self.eval(e, frame);
                None
            }
            StmtKind::Decl(d) => {
                self.decl(d, frame);
                None
            }
            StmtKind::Block(body) => {
                for s in body {
                    if let Some(ret) = self.inline_stmt(s, frame) {
                        return Some(ret);
                    }
                }
                None
            }
            StmtKind::Return(e) => Some(match e {
                Some(e) => self
                    .eval(e, frame)
                    .unwrap_or_else(|| LinExpr::sym(self.fresh("ret:?".to_string(), false))),
                None => LinExpr::constant(0),
            }),
            StmtKind::Empty => None,
            // `inlinable` rejects everything else.
            _ => Some(LinExpr::sym(self.fresh("ret:?".to_string(), false))),
        }
    }

    fn decl(&mut self, d: &mc_ast::Declaration, frame: &Frame) {
        let rk = frame.resolve(&d.name);
        match &d.init {
            Some(Initializer::Expr(e)) => {
                let v = self.eval(e, frame);
                match v {
                    Some(v) => {
                        self.bindings.insert(rk, v);
                    }
                    None => {
                        self.havoc_key(&rk);
                    }
                }
            }
            Some(Initializer::List(_)) => {
                self.havoc_key(&rk);
            }
            None => {}
        }
    }

    /// Asserts that `e` evaluated to `truth` on the path, pushing whatever
    /// linear constraints that implies. Conditions outside the fragment
    /// contribute nothing (sound: fewer constraints, never refutes more).
    fn assume(&mut self, e: &Expr, truth: bool, frame: &Frame) {
        match &e.kind {
            ExprKind::Unary {
                op: UnaryOp::Not,
                operand,
            } => self.assume(operand, !truth, frame),
            ExprKind::Cast { expr, .. } => self.assume(expr, truth, frame),
            ExprKind::Comma(a, b) => {
                let _ = self.eval(a, frame);
                self.assume(b, truth, frame);
            }
            ExprKind::Binary {
                op: BinaryOp::LogAnd,
                lhs,
                rhs,
            } if truth => {
                self.assume(lhs, true, frame);
                self.assume(rhs, true, frame);
            }
            ExprKind::Binary {
                op: BinaryOp::LogOr,
                lhs,
                rhs,
            } if !truth => {
                self.assume(lhs, false, frame);
                self.assume(rhs, false, frame);
            }
            ExprKind::Binary {
                op: BinaryOp::LogAnd | BinaryOp::LogOr,
                lhs,
                rhs,
            } => {
                // A false conjunction / true disjunction is a choice we do
                // not track; evaluate for effects only.
                let _ = self.eval(lhs, frame);
                let _ = self.eval(rhs, frame);
            }
            ExprKind::Binary { op, lhs, rhs }
                if matches!(
                    op,
                    BinaryOp::Eq
                        | BinaryOp::Ne
                        | BinaryOp::Lt
                        | BinaryOp::Le
                        | BinaryOp::Gt
                        | BinaryOp::Ge
                ) =>
            {
                let l = self.eval(lhs, frame);
                let r = self.eval(rhs, frame);
                if let (Some(l), Some(r)) = (l, r) {
                    if let Some(c) = cmp_constraint(*op, &l, &r, truth) {
                        self.push_cmp(c, &[&l, &r]);
                    }
                }
            }
            _ => {
                if let Some(v) = self.eval(e, frame) {
                    let c = if truth {
                        Constraint::Ne(v.clone())
                    } else {
                        Constraint::Eq(v.clone())
                    };
                    self.push_cmp(c, &[&v]);
                }
            }
        }
    }

    /// Decides the collected path condition under wrapping `i64`
    /// semantics.
    ///
    /// With no range guards every constraint is exact, and the solver's
    /// answer is the verdict. Otherwise three systems are consulted, each
    /// over `i64`-bounded symbols (every symbol stands for a concrete
    /// `i64` value):
    ///
    /// 1. *base* — only the guard-free constraints, valid for every
    ///    execution whether anything wrapped or not. `UNSAT` refutes
    ///    outright.
    /// 2. *full* — every constraint plus every guard held in range: the
    ///    no-wrap world. A model here is exact and therefore replayable;
    ///    `UNKNOWN` blocks refutation.
    /// 3. *wrap reachability* — `full` was `UNSAT`, so no in-range
    ///    execution takes the path; it is refuted only if no guard can
    ///    leave the range under the base facts (then every execution *is*
    ///    in-range). Any guard that can wrap leaves the path undecided
    ///    rather than wrongly refuted — e.g. `gNak = gCredit + 1;` then a
    ///    taken `gNak <= gCredit`, concretely satisfied at
    ///    `gCredit == i64::MAX`.
    fn decide(&self) -> Verdict {
        let exact: Vec<Constraint> = self
            .constraints
            .iter()
            .filter(|(_, g)| g.is_empty())
            .map(|(c, _)| c.clone())
            .collect();
        let mut guards: Vec<LinExpr> = Vec::new();
        for (_, gs) in &self.constraints {
            for g in gs {
                if !guards.contains(g) {
                    guards.push(g.clone());
                }
            }
        }
        if guards.is_empty() {
            return match solver::solve(&exact) {
                SolveResult::Unsat => Verdict::Refuted,
                SolveResult::Unknown => Verdict::Unknown,
                SolveResult::Sat(model) => Verdict::Sat {
                    model: model
                        .as_ref()
                        .map(|m| self.extract_model(m))
                        .unwrap_or_default(),
                },
            };
        }
        let min = LinExpr::constant(i64::MIN as i128);
        let max = LinExpr::constant(i64::MAX as i128);
        let one = LinExpr::constant(1);
        // e in [i64::MIN, i64::MAX], as two `Le` rows.
        let in_range = |e: &LinExpr, out: &mut Vec<Constraint>| -> bool {
            let (Some(hi), Some(lo)) = (e.sub(&max), min.sub(e)) else {
                return false;
            };
            out.push(Constraint::Le(hi));
            out.push(Constraint::Le(lo));
            true
        };
        let mut syms: BTreeSet<SymId> = BTreeSet::new();
        for (c, gs) in &self.constraints {
            let (Constraint::Eq(e) | Constraint::Le(e) | Constraint::Ne(e)) = c;
            syms.extend(e.terms.keys().copied());
            for g in gs {
                syms.extend(g.terms.keys().copied());
            }
        }
        let mut base = exact;
        for s in &syms {
            if !in_range(&LinExpr::sym(*s), &mut base) {
                return Verdict::Unknown;
            }
        }
        if matches!(solver::solve(&base), SolveResult::Unsat) {
            return Verdict::Refuted;
        }
        let mut full = base.clone();
        for (c, gs) in &self.constraints {
            if !gs.is_empty() {
                full.push(c.clone());
            }
        }
        for g in &guards {
            if !in_range(g, &mut full) {
                return Verdict::Unknown;
            }
        }
        match solver::solve(&full) {
            SolveResult::Sat(model) => {
                return Verdict::Sat {
                    model: model
                        .as_ref()
                        .map(|m| self.extract_model(m))
                        .unwrap_or_default(),
                }
            }
            SolveResult::Unknown => return Verdict::Unknown,
            SolveResult::Unsat => {}
        }
        for g in &guards {
            let sides = [
                // Wrapped high: g >= i64::MAX + 1.
                max.add(&one).and_then(|m| m.sub(g)),
                // Wrapped low: g <= i64::MIN - 1.
                g.sub(&min).and_then(|d| d.add(&one)),
            ];
            for side in sides {
                let Some(side) = side else {
                    return Verdict::Unknown;
                };
                let mut sys = base.clone();
                sys.push(Constraint::Le(side));
                if !matches!(solver::solve(&sys), SolveResult::Unsat) {
                    return Verdict::Unknown;
                }
            }
        }
        Verdict::Refuted
    }

    /// Replayable `(global, initial value)` pairs from a solver model.
    fn extract_model(&self, model: &BTreeMap<SymId, i128>) -> Vec<(String, i64)> {
        let mut out: Vec<(String, i64)> = model
            .iter()
            .filter_map(|(id, v)| {
                let info = self.syms.get(*id as usize)?;
                if !info.replayable {
                    return None;
                }
                Some((info.name.clone(), i64::try_from(*v).ok()?))
            })
            .collect();
        out.sort();
        out
    }
}

/// Whether `e`'s value is guaranteed representable as `i64` when every
/// symbol ranges over all of `i64` — the condition under which the exact
/// linear form agrees with `mc-sim`'s wrapping `i64` arithmetic. (Every
/// symbol stands for a concrete `i64`: an input global, a havoc, a call
/// result, or an already-wrapped value.)
fn fits_i64(e: &LinExpr) -> bool {
    let (mut lo, mut hi) = (e.constant, e.constant);
    for &c in e.terms.values() {
        let (Some(a), Some(b)) = (
            c.checked_mul(i64::MIN as i128),
            c.checked_mul(i64::MAX as i128),
        ) else {
            return false;
        };
        let (term_lo, term_hi) = if c >= 0 { (a, b) } else { (b, a) };
        let (Some(l), Some(h)) = (lo.checked_add(term_lo), hi.checked_add(term_hi)) else {
            return false;
        };
        lo = l;
        hi = h;
    }
    lo >= i64::MIN as i128 && hi <= i64::MAX as i128
}

/// Builds the normalized `e ⋈ 0` constraint for `lhs op rhs == truth`.
fn cmp_constraint(op: BinaryOp, l: &LinExpr, r: &LinExpr, truth: bool) -> Option<Constraint> {
    let one = LinExpr::constant(1);
    let d = l.sub(r)?; // l - r
    Some(match (op, truth) {
        (BinaryOp::Eq, true) | (BinaryOp::Ne, false) => Constraint::Eq(d),
        (BinaryOp::Ne, true) | (BinaryOp::Eq, false) => Constraint::Ne(d),
        // l < r  ⇔  l - r + 1 <= 0; its negation is r <= l.
        (BinaryOp::Lt, true) | (BinaryOp::Ge, false) => Constraint::Le(d.add(&one)?),
        (BinaryOp::Lt, false) | (BinaryOp::Ge, true) => Constraint::Le(r.sub(l)?),
        (BinaryOp::Le, true) | (BinaryOp::Gt, false) => Constraint::Le(d),
        (BinaryOp::Le, false) | (BinaryOp::Gt, true) => Constraint::Le(r.sub(l)?.add(&one)?),
        _ => return None,
    })
}

/// Whether `f` can be inlined: a straight-line body (no control flow other
/// than `return`) that never takes an address (so frame-private locals are
/// unaliasable).
fn inlinable(f: &Function) -> bool {
    fn stmt_ok(s: &Stmt) -> bool {
        match &s.kind {
            StmtKind::Expr(e) => expr_ok(e),
            StmtKind::Decl(d) => match &d.init {
                Some(Initializer::Expr(e)) => expr_ok(e),
                _ => true,
            },
            StmtKind::Block(body) => body.iter().all(stmt_ok),
            StmtKind::Return(e) => e.as_ref().is_none_or(expr_ok),
            StmtKind::Empty => true,
            _ => false,
        }
    }
    fn expr_ok(e: &Expr) -> bool {
        if matches!(
            &e.kind,
            ExprKind::Unary {
                op: UnaryOp::AddrOf,
                ..
            }
        ) {
            return false;
        }
        let mut ok = true;
        for_each_child(e, &mut |c| ok &= expr_ok(c));
        ok
    }
    f.body.iter().all(stmt_ok)
}

/// Executes the sliced `ops` and decides the path condition. Returns the
/// verdict and the number of constraints collected.
pub fn run(ops: &[PathOp], scope: &Scope, world: &dyn World) -> (Verdict, usize) {
    let mut ex = Exec::new(scope, world);
    let frame = Frame {
        prefix: String::new(),
        locals: scope.locals.clone(),
        depth: 0,
    };
    for op in ops {
        match op {
            PathOp::Stmt(s) => match &s.kind {
                StmtKind::Expr(e) => {
                    let _ = ex.eval(e, &frame);
                }
                StmtKind::Decl(d) => ex.decl(d, &frame),
                _ => {}
            },
            PathOp::Branch { cond, taken } => ex.assume(cond, *taken, &frame),
            PathOp::Case {
                scrutinee,
                arm,
                excluded,
            } => {
                let s = ex.eval(scrutinee, &frame);
                match arm {
                    Some(a) => {
                        let av = ex.eval(a, &frame);
                        if let (Some(s), Some(av)) = (&s, av) {
                            if let Some(d) = s.sub(&av) {
                                ex.push_cmp(Constraint::Eq(d), &[s, &av]);
                            }
                        }
                    }
                    None => {
                        for x in excluded {
                            let xv = ex.eval(x, &frame);
                            if let (Some(s), Some(xv)) = (&s, xv) {
                                if let Some(d) = s.sub(&xv) {
                                    ex.push_cmp(Constraint::Ne(d), &[s, &xv]);
                                }
                            }
                        }
                    }
                }
            }
            PathOp::Return => {}
        }
    }
    let n = ex.constraints.len();
    (ex.decide(), n)
}
