//! `mc-symx` — symbolic witness refutation.
//!
//! The checkers' FactSet predicate domain prunes what it can; every
//! surviving report still carries a witness path that *might* be infeasible
//! for reasons outside the domain (multi-variable linear correlations,
//! interprocedural dataflow). This crate is the post-pass that decides:
//!
//! 1. **reconstruct** the report's rendered [`PathStep`] chain back into
//!    statements and branch decisions through the function's CFG
//!    ([`path`]);
//! 2. **slice** the path backward to the statements its conditions depend
//!    on ([`slice`]);
//! 3. **execute** the slice symbolically, collecting the path condition as
//!    a conjunction of linear integer constraints ([`exec`]);
//! 4. **solve** with a bounded Fourier–Motzkin core ([`solver`]).
//!
//! The pipeline follows Slabý/Strejček/Trtík's *On Synergy of Metal,
//! Slicing, and Symbolic Execution*: slicing keeps the symbolic step cheap,
//! and the verdict is about the *witness*, not the program — `Refuted`
//! means "this particular path cannot execute", which is exactly the
//! false-positive shape the paper's users triaged away by hand.
//!
//! Soundness policy, applied at every stage: **unknown never refutes**. A
//! step that does not reconstruct, a value outside the linear fragment, a
//! callee we cannot inline, a system beyond the solver's budget — each
//! degrades toward [`Verdict::Unknown`] or toward *fewer* constraints,
//! never toward an unsound `Refuted`.

pub mod exec;
pub mod path;
pub mod slice;
pub mod solver;

pub use path::PathOp;
pub use slice::{for_each_child, Scope, SliceStats};

use mc_ast::Function;
use mc_cfg::{Cfg, PathStep};

/// The decision for one witness path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The path condition is UNSAT: this witness cannot execute.
    Refuted,
    /// The path condition is satisfiable. `model` holds the replayable part
    /// of a solution — initial values for plain globals the path reads
    /// before any call — and may be empty when the solver found no integer
    /// witness inside its budget or the inputs are not plain globals.
    Sat {
        /// `(global, initial value)` pairs, sorted by name.
        model: Vec<(String, i64)>,
    },
    /// The path could not be decided (reconstruction failed, or the solver
    /// hit its budget). Never used to drop a report.
    Unknown,
}

/// Size accounting for one analysis, surfaced in `perf` output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Operations in the reconstructed path (0 when reconstruction failed).
    pub total_ops: usize,
    /// Operations the backward slice kept.
    pub kept_ops: usize,
    /// Linear constraints handed to the solver.
    pub constraints: usize,
}

/// The result of analyzing one witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathAnalysis {
    /// The decision.
    pub verdict: Verdict,
    /// Size accounting.
    pub stats: AnalysisStats,
}

impl PathAnalysis {
    fn unknown() -> PathAnalysis {
        PathAnalysis {
            verdict: Verdict::Unknown,
            stats: AnalysisStats::default(),
        }
    }
}

/// What the executor may ask about the program around the path: callee
/// bodies (for straight-line inlining) and manifest-constant values.
pub trait World {
    /// The definition of `name`, if known.
    fn function(&self, name: &str) -> Option<&Function>;
    /// The value of manifest constant `name`, if known.
    fn constant(&self, name: &str) -> Option<i64>;
}

/// A [`World`] that knows nothing: every callee havocs, every unknown
/// constant stays symbolic.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyWorld;

impl World for EmptyWorld {
    fn function(&self, _name: &str) -> Option<&Function> {
        None
    }
    fn constant(&self, _name: &str) -> Option<i64> {
        None
    }
}

/// Analyzes one report's witness: reconstructs `steps` through `func`'s
/// CFG, slices, executes, and solves. Anything that cannot be replayed
/// symbolically is [`Verdict::Unknown`].
pub fn analyze_witness(func: &Function, steps: &[PathStep], world: &dyn World) -> PathAnalysis {
    if steps.is_empty() {
        return PathAnalysis::unknown();
    }
    let cfg = Cfg::build(func);
    let Some(ops) = path::reconstruct(&cfg, steps) else {
        return PathAnalysis::unknown();
    };
    let scope = Scope::of(func);
    analyze_ops(&ops, &scope, world)
}

/// Analyzes an already-reconstructed path. Exposed for tests and for the
/// property harness (random loop-free paths never go through step
/// rendering).
pub fn analyze_ops(ops: &[PathOp], scope: &Scope, world: &dyn World) -> PathAnalysis {
    let (kept, slice_stats) = slice::backward_slice(ops, scope);
    let (verdict, constraints) = exec::run(&kept, scope, world);
    PathAnalysis {
        verdict,
        stats: AnalysisStats {
            total_ops: slice_stats.total_ops,
            kept_ops: slice_stats.kept_ops,
            constraints,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_ast::TranslationUnit;

    /// A [`World`] backed by one parsed unit.
    struct UnitWorld {
        unit: TranslationUnit,
        constants: Vec<(String, i64)>,
    }

    impl UnitWorld {
        fn parse(src: &str) -> UnitWorld {
            UnitWorld {
                unit: mc_ast::parse_translation_unit(src, "w.c").expect("parse"),
                constants: Vec::new(),
            }
        }
    }

    impl World for UnitWorld {
        fn function(&self, name: &str) -> Option<&Function> {
            self.unit.function(name)
        }
        fn constant(&self, name: &str) -> Option<i64> {
            self.constants
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        }
    }

    fn steps(evs: &[(u32, u32, &str)]) -> Vec<PathStep> {
        evs.iter()
            .map(|(l, c, n)| PathStep::new(mc_ast::Span { line: *l, col: *c }, *n))
            .collect()
    }

    fn func_of<'a>(w: &'a UnitWorld, name: &str) -> &'a Function {
        w.unit.function(name).expect("function")
    }

    /// Engine-faithful witness steps along the path `dirs` selects.
    fn witness(f: &Function, dirs: &[isize]) -> Vec<PathStep> {
        path::trace(&Cfg::build(f), dirs)
    }

    #[test]
    fn infeasible_correlated_guards_are_refuted() {
        let w = UnitWorld::parse(
            "int gCredit;\nint gDebit;\nint gNak;\nvoid f(void) {\n  gNak = gCredit - gDebit;\n  if (gCredit == gDebit) {\n    if (gNak > 0) {\n      gNak = 0;\n    }\n  }\n}\n",
        );
        let f = func_of(&w, "f");
        let a = analyze_witness(f, &witness(f, &[1, 1]), &w);
        assert_eq!(a.verdict, Verdict::Refuted, "stats: {:?}", a.stats);
        assert!(a.stats.kept_ops <= a.stats.total_ops);
        assert!(a.stats.constraints >= 2);
    }

    #[test]
    fn feasible_path_gets_a_replayable_model() {
        let w = UnitWorld::parse(
            "int gLen;\nvoid f(void) {\n  if (gLen > 4) {\n    gLen = 0;\n  }\n}\n",
        );
        let f = func_of(&w, "f");
        let a = analyze_witness(f, &witness(f, &[1]), &w);
        match a.verdict {
            Verdict::Sat { model } => {
                assert_eq!(model.len(), 1);
                assert_eq!(model[0].0, "gLen");
                assert!(model[0].1 > 4, "model: {model:?}");
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn interproc_splice_contributes_callee_constraints() {
        // The correlated assignment lives in a straight-line helper; the
        // caller only sees the call. Inlining must splice `gNak = gCredit -
        // gDebit` into the path so the guards still refute.
        let w = UnitWorld::parse(
            "int gCredit;\nint gDebit;\nint gNak;\nvoid helper(void) {\n  gNak = gCredit - gDebit;\n}\nvoid f(void) {\n  helper();\n  if (gCredit == gDebit) {\n    if (gNak > 0) {\n      gNak = 0;\n    }\n  }\n}\n",
        );
        let f = func_of(&w, "f");
        // Splice the summarized-call marker in after its containing
        // statement, the way `fire_calls` renders it.
        let mut steps = witness(f, &[1, 1]);
        assert_eq!(steps[0].note, "statement");
        steps.insert(1, PathStep::new(steps[0].span, "call `helper`"));
        let a = analyze_witness(f, &steps, &w);
        assert_eq!(a.verdict, Verdict::Refuted, "stats: {:?}", a.stats);
        // Without the callee body the same path must NOT refute: the call
        // havocs gNak and the guards are independently satisfiable.
        let blind = analyze_witness(f, &witness(f, &[1, 1]), &EmptyWorld);
        assert!(
            matches!(blind.verdict, Verdict::Sat { .. }),
            "got {:?}",
            blind.verdict
        );
    }

    #[test]
    fn calls_havoc_instead_of_refuting() {
        // The correlation is broken by an opaque call between the
        // assignment and the guards: the report must survive.
        let w = UnitWorld::parse(
            "int gCredit;\nint gDebit;\nint gNak;\nvoid f(void) {\n  gNak = gCredit - gDebit;\n  OPAQUE();\n  if (gNak > 0) {\n    if (gNak < 0) {\n      gNak = 0;\n    }\n  }\n}\n",
        );
        // gNak > 0 && gNak < 0 over the SAME value is still UNSAT even
        // after havoc (both guards read the post-call value)…
        let f = func_of(&w, "f");
        let a = analyze_witness(f, &witness(f, &[1, 1]), &w);
        assert_eq!(a.verdict, Verdict::Refuted);
        // …but a correlation with a pre-call value is forgotten: feasible.
        let w2 = UnitWorld::parse(
            "int gCredit;\nint gDebit;\nint gNak;\nvoid f(void) {\n  gNak = gCredit - gDebit;\n  OPAQUE();\n  if (gCredit == gDebit) {\n    if (gNak > 0) {\n      gNak = 0;\n    }\n  }\n}\n",
        );
        let f2 = func_of(&w2, "f");
        let a2 = analyze_witness(f2, &witness(f2, &[1, 1]), &w2);
        assert!(
            matches!(a2.verdict, Verdict::Sat { .. }),
            "got {:?}",
            a2.verdict
        );
    }

    #[test]
    fn manifest_constants_resolve_through_the_world() {
        let mut w = UnitWorld::parse(
            "int gLen;\nvoid f(void) {\n  if (gLen == LEN_WORD) {\n    if (gLen > 5) {\n      gLen = 0;\n    }\n  }\n}\n",
        );
        w.constants.push(("LEN_WORD".to_string(), 1));
        let path = witness(func_of(&w, "f"), &[1, 1]);
        let a = analyze_witness(func_of(&w, "f"), &path, &w);
        // gLen == 1 && gLen > 5: refuted only because the world knows
        // LEN_WORD.
        assert_eq!(a.verdict, Verdict::Refuted);
        // With an unknown constant the same shape is satisfiable (the
        // constant could be 6).
        w.constants.clear();
        let a2 = analyze_witness(func_of(&w, "f"), &path, &w);
        assert!(matches!(a2.verdict, Verdict::Sat { .. }));
    }

    #[test]
    fn multi_label_dispatch_does_not_refute_later_arm_guards() {
        // Opcode dispatch through a multi-label arm: the witness that
        // dispatched on `case 2` matches `case 1`'s step chain too, so no
        // arm equality may be asserted — committing to `gOp == 1` would
        // make the later taken `gOp == 2` guard UNSAT and unsoundly
        // refute a feasible path.
        let w = UnitWorld::parse(
            "int gOp;\nint gErr;\nvoid f(void) {\n  switch (gOp) {\n  case 1:\n  case 2:\n    gErr = 1;\n    break;\n  }\n  if (gOp == 2) {\n    if (gErr > 0) {\n      gErr = 0;\n    }\n  }\n}\n",
        );
        let f = func_of(&w, "f");
        // dirs: labeled arm index 1 (`case 2`), then both guards taken.
        let a = analyze_witness(f, &witness(f, &[1, 1, 1]), &w);
        assert!(
            matches!(a.verdict, Verdict::Sat { .. }),
            "got {:?}",
            a.verdict
        );
        // A single-label arm still contributes its equality: dispatching
        // on `case 1` of a switch whose arms differ contradicts a later
        // taken `gOp == 2`.
        let w2 = UnitWorld::parse(
            "int gOp;\nint gErr;\nvoid f(void) {\n  switch (gOp) {\n  case 1:\n    gErr = 1;\n    break;\n  case 2:\n    gErr = 2;\n    break;\n  }\n  if (gOp == 2) {\n    if (gErr > 0) {\n      gErr = 0;\n    }\n  }\n}\n",
        );
        let f2 = func_of(&w2, "f");
        let a2 = analyze_witness(f2, &witness(f2, &[0, 1, 1]), &w2);
        assert_eq!(a2.verdict, Verdict::Refuted, "stats: {:?}", a2.stats);
    }

    #[test]
    fn wraparound_feasible_paths_are_not_refuted() {
        // `gNak = gCredit + 1` then a taken `gNak <= gCredit` is UNSAT
        // over unbounded integers but concretely feasible at
        // gCredit == i64::MAX, where mc-sim's wrapping add makes gNak
        // negative. The wrap-aware decision must keep the report (it may
        // be Unknown — the executor does not model the wrapped value —
        // but never Refuted).
        let w = UnitWorld::parse(
            "int gCredit;\nint gNak;\nvoid f(void) {\n  gNak = gCredit + 1;\n  if (gNak <= gCredit) {\n    gNak = 0;\n  }\n}\n",
        );
        let f = func_of(&w, "f");
        let a = analyze_witness(f, &witness(f, &[1]), &w);
        assert!(
            !matches!(a.verdict, Verdict::Refuted),
            "wrap-only-feasible path was refuted (stats: {:?})",
            a.stats
        );
        // The same arithmetic under a guard that pins the operands in
        // range still refutes: gCredit == 0 forces gNak == 1, which
        // cannot be negative.
        let w2 = UnitWorld::parse(
            "int gCredit;\nint gNak;\nvoid f(void) {\n  gNak = gCredit + 1;\n  if (gCredit == 0) {\n    if (gNak < 0) {\n      gNak = 0;\n    }\n  }\n}\n",
        );
        let f2 = func_of(&w2, "f");
        let a2 = analyze_witness(f2, &witness(f2, &[1, 1]), &w2);
        assert_eq!(a2.verdict, Verdict::Refuted, "stats: {:?}", a2.stats);
    }

    #[test]
    fn lane_traces_and_empty_witnesses_are_unknown() {
        let w = UnitWorld::parse("void f(void) {\n  int x;\n}\n");
        let a = analyze_witness(func_of(&w, "f"), &[], &w);
        assert_eq!(a.verdict, Verdict::Unknown);
        let a2 = analyze_witness(func_of(&w, "f"), &steps(&[(2, 3, "gBuf in f")]), &w);
        assert_eq!(a2.verdict, Verdict::Unknown);
    }

    #[test]
    fn loop_paths_with_exact_updates_refute() {
        // Two iterations of i++ starting from i == 0 cannot satisfy a
        // `i > 5` guard on the second test.
        let w = UnitWorld::parse(
            "void f(void) {\n  int i;\n  i = 0;\n  while (i < 2) {\n    i = i + 1;\n  }\n  if (i > 5) {\n    i = 0;\n  }\n}\n",
        );
        let f = func_of(&w, "f");
        let a = analyze_witness(f, &witness(f, &[1, 1, 0, 1]), &w);
        assert_eq!(a.verdict, Verdict::Refuted, "stats: {:?}", a.stats);
    }
}
