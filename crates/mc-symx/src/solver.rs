//! An SMT-lite solver for the witness-refutation fragment: conjunctions of
//! linear integer constraints (equalities, disequalities, and inequalities
//! over symbolic values) decided by substitution plus Fourier–Motzkin
//! elimination — no external SMT dependency.
//!
//! The solver is *refutation-sound*: [`SolveResult::Unsat`] is only returned
//! when the conjunction provably has no integer solution. Satisfiable (or
//! too-hard) systems come back as `Sat`/`Unknown`, never `Unsat`:
//!
//! - equalities are eliminated by exact substitution, with the gcd test
//!   (`2x == 1` has no integer solution) applied first;
//! - inequalities go through Fourier–Motzkin elimination, which is complete
//!   over the rationals — a rational-infeasible system is integer-infeasible,
//!   so `Unsat` is sound, while rational-feasible systems are reported `Sat`
//!   even when integer-tightening could in principle refute them;
//! - disequalities only refute when they collapse to a constant
//!   contradiction (`0 != 0`); otherwise they are checked against the model.
//!
//! Every arithmetic step is `i128`-checked and the system size is capped;
//! any overflow or cap hit yields [`SolveResult::Unknown`] — the caller's
//! soundness policy ("unknown never refutes") maps that to *keep the
//! report*.

use std::collections::BTreeMap;

/// Identifier of one symbolic value (an unknown integer input).
pub type SymId = u32;

/// A linear expression `constant + Σ coeff·sym` over `i128`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinExpr {
    /// The constant term.
    pub constant: i128,
    /// Non-zero coefficients per symbol.
    pub terms: BTreeMap<SymId, i128>,
}

impl LinExpr {
    /// The constant expression `v`.
    pub fn constant(v: i128) -> LinExpr {
        LinExpr {
            constant: v,
            terms: BTreeMap::new(),
        }
    }

    /// The expression `1·sym`.
    pub fn sym(s: SymId) -> LinExpr {
        let mut terms = BTreeMap::new();
        terms.insert(s, 1);
        LinExpr { constant: 0, terms }
    }

    /// Whether the expression has no symbolic part.
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    /// Checked sum. `None` on `i128` overflow.
    pub fn add(&self, other: &LinExpr) -> Option<LinExpr> {
        let mut out = self.clone();
        out.constant = out.constant.checked_add(other.constant)?;
        for (&s, &c) in &other.terms {
            let e = out.terms.entry(s).or_insert(0);
            *e = e.checked_add(c)?;
            if *e == 0 {
                out.terms.remove(&s);
            }
        }
        Some(out)
    }

    /// Checked difference. `None` on `i128` overflow.
    pub fn sub(&self, other: &LinExpr) -> Option<LinExpr> {
        self.add(&other.mul_const(-1)?)
    }

    /// Checked scaling. `None` on `i128` overflow.
    pub fn mul_const(&self, k: i128) -> Option<LinExpr> {
        if k == 0 {
            return Some(LinExpr::constant(0));
        }
        let mut out = LinExpr {
            constant: self.constant.checked_mul(k)?,
            terms: BTreeMap::new(),
        };
        for (&s, &c) in &self.terms {
            out.terms.insert(s, c.checked_mul(k)?);
        }
        Some(out)
    }

    /// Evaluates under `model` (missing symbols read as 0).
    pub fn eval(&self, model: &BTreeMap<SymId, i128>) -> Option<i128> {
        let mut v = self.constant;
        for (&s, &c) in &self.terms {
            let x = model.get(&s).copied().unwrap_or(0);
            v = v.checked_add(c.checked_mul(x)?)?;
        }
        Some(v)
    }
}

/// One constraint over a [`LinExpr`] `e`, in normalized `e ⋈ 0` form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constraint {
    /// `e == 0`.
    Eq(LinExpr),
    /// `e <= 0`.
    Le(LinExpr),
    /// `e != 0`.
    Ne(LinExpr),
}

/// The outcome of deciding a constraint conjunction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// No integer solution exists (proven).
    Unsat,
    /// A solution exists; the model assigns every mentioned symbol. `None`
    /// when the system is rationally feasible but no integer witness was
    /// found within the search budget (still *not* refuted).
    Sat(Option<BTreeMap<SymId, i128>>),
    /// The system exceeded the solver's size/arithmetic budget.
    Unknown,
}

/// Solver size caps: beyond these the result is `Unknown`, never a wrong
/// verdict. Generous for witness paths (tens of constraints over a handful
/// of correlated variables).
const MAX_SYMS: usize = 64;
const MAX_CONSTRAINTS: usize = 512;
const MAX_FM_ROWS: usize = 4096;
const MAX_COEFF: i128 = 1 << 96;

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Divides out the gcd of an inequality `e <= 0`, tightening the constant
/// toward the integer lattice: `g·(a·x) + c <= 0` becomes
/// `a·x <= floor(-c / g)`.
fn tighten_le(e: &LinExpr) -> LinExpr {
    let g = e.terms.values().fold(0, |acc, &c| gcd(acc, c));
    if g <= 1 {
        return e.clone();
    }
    let mut out = LinExpr::default();
    for (&s, &c) in &e.terms {
        out.terms.insert(s, c / g);
    }
    // a·x <= -c/g, rounded down: a·x + ceil(c/g) <= 0.
    out.constant = ceil_div(e.constant, g);
    out
}

fn ceil_div(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    let d = a / b;
    if a % b > 0 {
        d + 1
    } else {
        d
    }
}

fn floor_div(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    let d = a / b;
    if a % b < 0 {
        d - 1
    } else {
        d
    }
}

/// Decides the conjunction of `constraints` over the integers.
pub fn solve(constraints: &[Constraint]) -> SolveResult {
    if constraints.len() > MAX_CONSTRAINTS {
        return SolveResult::Unknown;
    }
    let mut eqs: Vec<LinExpr> = Vec::new();
    let mut les: Vec<LinExpr> = Vec::new();
    let mut nes: Vec<LinExpr> = Vec::new();
    for c in constraints {
        match c {
            Constraint::Eq(e) => eqs.push(e.clone()),
            Constraint::Le(e) => les.push(e.clone()),
            Constraint::Ne(e) => nes.push(e.clone()),
        }
    }
    let n_syms = constraints
        .iter()
        .flat_map(|c| match c {
            Constraint::Eq(e) | Constraint::Le(e) | Constraint::Ne(e) => e.terms.keys(),
        })
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    if n_syms > MAX_SYMS {
        return SolveResult::Unknown;
    }

    // Phase 1: eliminate equalities by substitution. Each round picks an
    // equality with a ±1-coefficient symbol, solves for it, and substitutes
    // everywhere. Equalities without a unit coefficient first take the gcd
    // test, then fall through to the inequality phase as a `<=`/`>=` pair.
    let mut solved: Vec<(SymId, LinExpr)> = Vec::new(); // sym = expr, in order
    loop {
        // Constant equalities are decided immediately.
        let mut progress = false;
        let mut i = 0;
        while i < eqs.len() {
            if eqs[i].is_const() {
                if eqs[i].constant != 0 {
                    return SolveResult::Unsat;
                }
                eqs.swap_remove(i);
                progress = true;
            } else {
                i += 1;
            }
        }
        // The gcd (integrality) test: a·x + c == 0 needs gcd(a) | c.
        for e in &eqs {
            let g = e.terms.values().fold(0, |acc, &c| gcd(acc, c));
            if g > 1 && e.constant % g != 0 {
                return SolveResult::Unsat;
            }
        }
        let pick = eqs
            .iter()
            .position(|e| e.terms.values().any(|&c| c == 1 || c == -1));
        let Some(idx) = pick else {
            if progress {
                continue;
            }
            break;
        };
        let eq = eqs.swap_remove(idx);
        let (&sym, &coef) = eq
            .terms
            .iter()
            .find(|(_, &c)| c == 1 || c == -1)
            .expect("picked by position");
        // coef·sym + rest == 0  =>  sym = -rest/coef = rest·(-1/coef).
        let mut rest = eq.clone();
        rest.terms.remove(&sym);
        let Some(replacement) = rest.mul_const(-coef) else {
            return SolveResult::Unknown;
        };
        let subst = |e: &LinExpr| -> Option<LinExpr> {
            let Some(&c) = e.terms.get(&sym) else {
                return Some(e.clone());
            };
            let mut out = e.clone();
            out.terms.remove(&sym);
            out.add(&replacement.mul_const(c)?)
        };
        let apply_all = |v: &mut Vec<LinExpr>| -> Option<()> {
            for e in v.iter_mut() {
                *e = subst(e)?;
            }
            Some(())
        };
        if apply_all(&mut eqs).is_none()
            || apply_all(&mut les).is_none()
            || apply_all(&mut nes).is_none()
        {
            return SolveResult::Unknown;
        }
        for (_, e) in solved.iter_mut() {
            match subst(e) {
                Some(ne) => *e = ne,
                None => return SolveResult::Unknown,
            }
        }
        solved.push((sym, replacement));
    }
    // Residual (non-unit) equalities become inequality pairs.
    for e in eqs {
        match e.mul_const(-1) {
            Some(neg) => {
                les.push(e);
                les.push(neg);
            }
            None => return SolveResult::Unknown,
        }
    }

    // Constant disequalities decide immediately; symbolic ones wait for the
    // model check.
    for e in &nes {
        if e.is_const() && e.constant == 0 {
            return SolveResult::Unsat;
        }
    }

    // Phase 2: Fourier–Motzkin elimination over the inequalities.
    les.retain(|e| !e.terms.is_empty() || e.constant > 0);
    let mut rows = les;
    for e in &rows {
        if e.is_const() && e.constant > 0 {
            return SolveResult::Unsat;
        }
    }
    let mut order: Vec<SymId> = Vec::new();
    let mut bounds_per_sym: Vec<(SymId, Vec<LinExpr>)> = Vec::new();
    loop {
        let syms: std::collections::BTreeSet<SymId> =
            rows.iter().flat_map(|e| e.terms.keys().copied()).collect();
        let Some(&sym) = syms.iter().next() else {
            break;
        };
        // Pick the symbol minimizing uppers·lowers to curb row growth.
        let mut best = (usize::MAX, sym);
        for &s in &syms {
            let ups = rows
                .iter()
                .filter(|e| e.terms.get(&s).copied().unwrap_or(0) > 0)
                .count();
            let los = rows
                .iter()
                .filter(|e| e.terms.get(&s).copied().unwrap_or(0) < 0)
                .count();
            let cost = ups * los;
            if cost < best.0 {
                best = (cost, s);
            }
        }
        let sym = best.1;
        let (with, rest): (Vec<LinExpr>, Vec<LinExpr>) =
            rows.into_iter().partition(|e| e.terms.contains_key(&sym));
        rows = rest;
        let uppers: Vec<&LinExpr> = with.iter().filter(|e| e.terms[&sym] > 0).collect();
        let lowers: Vec<&LinExpr> = with.iter().filter(|e| e.terms[&sym] < 0).collect();
        for u in &uppers {
            for l in &lowers {
                let p = u.terms[&sym]; // > 0
                let q = -l.terms[&sym]; // > 0
                                        // q·u + p·l eliminates sym.
                let combined = match (u.mul_const(q), l.mul_const(p)) {
                    (Some(a), Some(b)) => match a.add(&b) {
                        Some(c) => c,
                        None => return SolveResult::Unknown,
                    },
                    _ => return SolveResult::Unknown,
                };
                let t = tighten_le(&combined);
                if t.terms.values().any(|c| c.abs() > MAX_COEFF) || t.constant.abs() > MAX_COEFF {
                    return SolveResult::Unknown;
                }
                if t.is_const() {
                    if t.constant > 0 {
                        return SolveResult::Unsat;
                    }
                } else {
                    rows.push(t);
                }
            }
        }
        if rows.len() > MAX_FM_ROWS {
            return SolveResult::Unknown;
        }
        order.push(sym);
        bounds_per_sym.push((sym, with));
    }
    for e in &rows {
        if e.constant > 0 {
            return SolveResult::Unsat;
        }
    }

    // Rationally satisfiable. Phase 3: search for an integer model by
    // back-substitution in reverse elimination order, trying a few value
    // choices per symbol to dodge disequalities.
    let all_syms: std::collections::BTreeSet<SymId> = constraints
        .iter()
        .flat_map(|c| match c {
            Constraint::Eq(e) | Constraint::Le(e) | Constraint::Ne(e) => {
                e.terms.keys().copied().collect::<Vec<_>>()
            }
        })
        .collect();
    'strategy: for strategy in 0..4u8 {
        let mut model: BTreeMap<SymId, i128> = BTreeMap::new();
        for (sym, bounds) in bounds_per_sym.iter().rev() {
            let mut lo: Option<i128> = None;
            let mut hi: Option<i128> = None;
            for b in bounds {
                let a = b.terms[sym];
                let mut rest = b.clone();
                rest.terms.remove(sym);
                let Some(r) = rest.eval(&model) else {
                    continue 'strategy;
                };
                // a·sym + r <= 0.
                if a > 0 {
                    let ub = floor_div(-r, a);
                    hi = Some(hi.map_or(ub, |h: i128| h.min(ub)));
                } else {
                    let lb = ceil_div(r, -a);
                    lo = Some(lo.map_or(lb, |l: i128| l.max(lb)));
                }
            }
            if let (Some(l), Some(h)) = (lo, hi) {
                if l > h {
                    // Integer-empty interval that FM's rational pass let
                    // through: not a proof of UNSAT for the whole system
                    // under our ordering, so give up on the model only.
                    continue 'strategy;
                }
            }
            let v = match strategy {
                0 => 0i128.clamp(lo.unwrap_or(0), hi.unwrap_or(0).max(lo.unwrap_or(0))),
                1 => lo.or(hi).unwrap_or(0),
                2 => hi.or(lo).unwrap_or(0),
                _ => lo.map(|l| l + 1).or(hi).unwrap_or(1),
            };
            let v = match (lo, hi) {
                (Some(l), Some(h)) => v.clamp(l, h),
                (Some(l), None) => v.max(l),
                (None, Some(h)) => v.min(h),
                (None, None) => v,
            };
            model.insert(*sym, v);
        }
        for s in &all_syms {
            model.entry(*s).or_insert(match strategy {
                3 => 1,
                _ => 0,
            });
        }
        // Resolve the substituted symbols (reverse order: later
        // substitutions may reference earlier-solved symbols).
        for (sym, expr) in solved.iter().rev() {
            let Some(v) = expr.eval(&model) else {
                continue 'strategy;
            };
            model.insert(*sym, v);
        }
        if verify(constraints, &model) {
            return SolveResult::Sat(Some(model));
        }
    }
    SolveResult::Sat(None)
}

/// Checks `model` against every constraint.
pub fn verify(constraints: &[Constraint], model: &BTreeMap<SymId, i128>) -> bool {
    constraints.iter().all(|c| match c {
        Constraint::Eq(e) => e.eval(model) == Some(0),
        Constraint::Le(e) => matches!(e.eval(model), Some(v) if v <= 0),
        Constraint::Ne(e) => matches!(e.eval(model), Some(v) if v != 0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: SymId) -> LinExpr {
        LinExpr::sym(s)
    }

    #[test]
    fn equality_substitution_refutes_correlated_guards() {
        // x == y  &&  x - y >= 1  — the planted-FP shape.
        let x_minus_y = sym(0).sub(&sym(1)).unwrap();
        let cs = vec![
            Constraint::Eq(x_minus_y.clone()),
            // x - y >= 1  <=>  1 - (x - y) <= 0.
            Constraint::Le(LinExpr::constant(1).sub(&x_minus_y).unwrap()),
        ];
        assert_eq!(solve(&cs), SolveResult::Unsat);
    }

    #[test]
    fn satisfiable_system_produces_verifying_model() {
        // x >= 3, y == x + 2, y <= 10, y != 5.
        let cs = vec![
            Constraint::Le(LinExpr::constant(3).sub(&sym(0)).unwrap()),
            Constraint::Eq(
                sym(1)
                    .sub(&sym(0).add(&LinExpr::constant(2)).unwrap())
                    .unwrap(),
            ),
            Constraint::Le(sym(1).sub(&LinExpr::constant(10)).unwrap()),
            Constraint::Ne(sym(1).sub(&LinExpr::constant(5)).unwrap()),
        ];
        match solve(&cs) {
            SolveResult::Sat(Some(m)) => assert!(verify(&cs, &m), "model {m:?}"),
            other => panic!("expected model, got {other:?}"),
        }
    }

    #[test]
    fn gcd_test_refutes_integer_infeasible_equality() {
        // 2x == 1.
        let e = sym(0)
            .mul_const(2)
            .unwrap()
            .sub(&LinExpr::constant(1))
            .unwrap();
        assert_eq!(solve(&[Constraint::Eq(e)]), SolveResult::Unsat);
    }

    #[test]
    fn constant_contradictions() {
        assert_eq!(
            solve(&[Constraint::Eq(LinExpr::constant(3))]),
            SolveResult::Unsat
        );
        assert_eq!(
            solve(&[Constraint::Le(LinExpr::constant(1))]),
            SolveResult::Unsat
        );
        assert_eq!(
            solve(&[Constraint::Ne(LinExpr::constant(0))]),
            SolveResult::Unsat
        );
        assert!(matches!(solve(&[]), SolveResult::Sat(Some(_))));
    }

    #[test]
    fn fm_chain_refutes_transitive_bounds() {
        // x <= y, y <= z, z <= x - 1 (strict cycle).
        let cs = vec![
            Constraint::Le(sym(0).sub(&sym(1)).unwrap()),
            Constraint::Le(sym(1).sub(&sym(2)).unwrap()),
            Constraint::Le(
                sym(2)
                    .sub(&sym(0).sub(&LinExpr::constant(1)).unwrap())
                    .unwrap(),
            ),
        ];
        assert_eq!(solve(&cs), SolveResult::Unsat);
    }

    #[test]
    fn bounded_box_with_disequalities_finds_model() {
        // 0 <= x <= 2, x != 0, x != 2: only x == 1 works.
        let cs = vec![
            Constraint::Le(LinExpr::constant(0).sub(&sym(0)).unwrap()),
            Constraint::Le(sym(0).sub(&LinExpr::constant(2)).unwrap()),
            Constraint::Ne(sym(0)),
            Constraint::Ne(sym(0).sub(&LinExpr::constant(2)).unwrap()),
        ];
        match solve(&cs) {
            SolveResult::Sat(Some(m)) => assert_eq!(m[&0], 1),
            other => panic!("expected x=1, got {other:?}"),
        }
    }

    #[test]
    fn oversized_systems_are_unknown_not_refuted() {
        let cs: Vec<Constraint> = (0..MAX_CONSTRAINTS as u32 + 1)
            .map(|i| Constraint::Le(sym(i % 4).sub(&LinExpr::constant(i as i128)).unwrap()))
            .collect();
        assert_eq!(solve(&cs), SolveResult::Unknown);
    }
}
