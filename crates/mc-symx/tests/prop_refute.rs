//! Soundness property for the refutation pipeline: on random loop-free
//! paths over a small linear language, a `Refuted` verdict implies that
//! exhaustive concrete enumeration over a bounded input box finds no
//! witness, and a `Sat` model (when one is produced) concretely realizes
//! the path.
//!
//! The enumeration bound does not weaken the property: `Refuted` claims
//! infeasibility over *all* integers, so any box is a valid search space
//! for a counterexample.

use mc_symx::{analyze_ops, EmptyWorld, PathOp, Scope, Verdict};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use proptest::test_runner::TestRng;

/// Number of global variables (`g0`..`g{NV-1}`).
const NV: usize = 3;
/// Concrete enumeration box per variable.
const DOMAIN: std::ops::RangeInclusive<i128> = -3..=3;

const CMPS: [&str; 6] = ["==", "!=", "<", "<=", ">", ">="];

/// One operation of a generated path, in a shape we can both render to C
/// (for the symbolic pipeline) and interpret concretely.
#[derive(Debug, Clone)]
enum OpDesc {
    /// `g{t} = a*g{y} + b*g{z} + c;`
    Assign {
        t: usize,
        a: i128,
        y: usize,
        b: i128,
        z: usize,
        c: i128,
    },
    /// Path took (`taken`) or avoided the guard `g{x} cmp rhs`.
    Guard {
        x: usize,
        cmp: usize,
        rhs: RhsDesc,
        taken: bool,
    },
}

#[derive(Debug, Clone)]
enum RhsDesc {
    Var(usize),
    Const(i128),
}

fn gen_ops(rng: &mut TestRng) -> Vec<OpDesc> {
    let n = 1 + rng.next_below(10) as usize;
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.5) {
                OpDesc::Assign {
                    t: rng.next_below(NV as u64) as usize,
                    a: rng.next_below(7) as i128 - 3,
                    y: rng.next_below(NV as u64) as usize,
                    b: rng.next_below(7) as i128 - 3,
                    z: rng.next_below(NV as u64) as usize,
                    c: rng.next_below(11) as i128 - 5,
                }
            } else {
                OpDesc::Guard {
                    x: rng.next_below(NV as u64) as usize,
                    cmp: rng.next_below(CMPS.len() as u64) as usize,
                    rhs: if rng.gen_bool(0.5) {
                        RhsDesc::Var(rng.next_below(NV as u64) as usize)
                    } else {
                        RhsDesc::Const(rng.next_below(11) as i128 - 5)
                    },
                    taken: rng.gen_bool(0.5),
                }
            }
        })
        .collect()
}

/// Renders the descriptors into real AST path operations.
fn to_path_ops(ops: &[OpDesc]) -> Vec<PathOp> {
    ops.iter()
        .map(|op| match op {
            OpDesc::Assign { t, a, y, b, z, c } => {
                let src = format!("g{t} = ({a}) * g{y} + ({b}) * g{z} + ({c});");
                PathOp::Stmt(mc_ast::parse_stmt(&src).expect("stmt"))
            }
            OpDesc::Guard { x, cmp, rhs, taken } => {
                let rhs = match rhs {
                    RhsDesc::Var(v) => format!("g{v}"),
                    RhsDesc::Const(c) => format!("({c})"),
                };
                let src = format!("g{x} {} {rhs}", CMPS[*cmp]);
                PathOp::Branch {
                    cond: mc_ast::parse_expr(&src).expect("cond"),
                    taken: *taken,
                }
            }
        })
        .collect()
}

/// Runs the path concretely from `init`. `true` when every guard decision
/// matches the path.
fn realizes(ops: &[OpDesc], init: &[i128; NV]) -> bool {
    let mut env = *init;
    for op in ops {
        match op {
            OpDesc::Assign { t, a, y, b, z, c } => {
                env[*t] = a * env[*y] + b * env[*z] + c;
            }
            OpDesc::Guard { x, cmp, rhs, taken } => {
                let l = env[*x];
                let r = match rhs {
                    RhsDesc::Var(v) => env[*v],
                    RhsDesc::Const(c) => *c,
                };
                let holds = match CMPS[*cmp] {
                    "==" => l == r,
                    "!=" => l != r,
                    "<" => l < r,
                    "<=" => l <= r,
                    ">" => l > r,
                    _ => l >= r,
                };
                if holds != *taken {
                    return false;
                }
            }
        }
    }
    true
}

fn enumerate_witness(ops: &[OpDesc]) -> Option<[i128; NV]> {
    for v0 in DOMAIN {
        for v1 in DOMAIN {
            for v2 in DOMAIN {
                let init = [v0, v1, v2];
                if realizes(ops, &init) {
                    return Some(init);
                }
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn unsat_paths_have_no_concrete_witness(ops in BoxedStrategy::from_fn(gen_ops)) {
        let path_ops = to_path_ops(&ops);
        let analysis = analyze_ops(&path_ops, &Scope::default(), &EmptyWorld);
        match analysis.verdict {
            Verdict::Refuted => {
                let witness = enumerate_witness(&ops);
                prop_assert!(
                    witness.is_none(),
                    "refuted path has concrete witness {witness:?}: {ops:?}"
                );
            }
            Verdict::Sat { model } if !model.is_empty() => {
                // The replayable model must concretely realize the path.
                let mut init = [0i128; NV];
                for (name, v) in &model {
                    let idx: usize = name[1..].parse().expect("g<idx>");
                    init[idx] = i128::from(*v);
                }
                prop_assert!(
                    realizes(&ops, &init),
                    "sat model {model:?} does not realize the path: {ops:?}"
                );
            }
            // Sat with no integer model found, or Unknown: nothing to check
            // (neither is ever used to drop a report).
            _ => {}
        }
    }
}
