//! Property tests for the incremental engine's cache records: random
//! reports and records must survive a serialize → parse round trip
//! exactly, and corrupted or mislabeled record files must degrade to a
//! cache miss — never a crash, never a wrong answer.

use mc_ast::Span;
use mc_cfg::PathStep;
use mc_driver::cache::{key_hex, ComponentRecord, DiskCache, ProgramRecord, UnitRecord};
use mc_driver::{Report, Severity, Verdict};
use proptest::prelude::*;

/// Message-like text: printable ASCII (including `"` and `\`, the JSON
/// escape stress cases) plus embedded newlines and tabs.
fn text() -> &'static str {
    "[ -~\\n\\t]{0,40}"
}

fn func_name() -> &'static str {
    "[A-Za-z_][A-Za-z0-9_]{0,10}"
}

fn arb_step() -> impl Strategy<Value = PathStep> {
    ("[a-z_.]{0,10}", (1u32..10_000, 1u32..240), text()).prop_map(|(file, (line, col), note)| {
        PathStep {
            file,
            span: Span::new(line, col),
            note,
        }
    })
}

fn arb_report() -> impl Strategy<Value = Report> {
    (
        ("[a-z_]{1,12}", any::<bool>(), "[a-z_]{1,10}\\.c"),
        (func_name(), (1u32..10_000, 1u32..240), text()),
        (
            prop::collection::vec(arb_step(), 0..4),
            0u8..101,
            any::<u32>(),
        ),
        (
            0u8..4,
            prop::collection::vec(("g[A-Za-z]{1,8}", any::<i64>()), 0..3),
        ),
    )
        .prop_map(
            |(
                (checker, warning, file),
                (function, (line, col), message),
                (steps, confidence, pruned_paths),
                (verdict, mut model),
            )| {
                // The model is (name → value): sorted, unique keys, like
                // the solver produces.
                model.sort();
                model.dedup_by(|a, b| a.0 == b.0);
                Report {
                    checker,
                    severity: if warning {
                        Severity::Warning
                    } else {
                        Severity::Error
                    },
                    file,
                    function,
                    span: Span::new(line, col),
                    message,
                    steps,
                    confidence,
                    pruned_paths,
                    verdict: match verdict {
                        0 => Verdict::Unchecked,
                        1 => Verdict::Refuted,
                        2 => Verdict::Sat,
                        _ => Verdict::Confirmed,
                    },
                    model,
                }
            },
        )
}

fn arb_unit() -> impl Strategy<Value = UnitRecord> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (
            prop::collection::vec(func_name(), 0..5),
            prop::collection::vec(func_name(), 0..5),
            prop::collection::vec(arb_report(), 0..5),
        ),
    )
        .prop_map(
            |((src_key, ast_key, summary_key), (defines, calls, reports))| UnitRecord {
                src_key,
                ast_key,
                summary_key,
                defines,
                calls,
                reports,
            },
        )
}

fn arb_component() -> impl Strategy<Value = ComponentRecord> {
    (any::<u64>(), prop::collection::vec(arb_report(), 0..6))
        .prop_map(|(key, reports)| ComponentRecord { key, reports })
}

fn arb_program() -> impl Strategy<Value = ProgramRecord> {
    (any::<u64>(), prop::collection::vec(arb_report(), 0..6))
        .prop_map(|(key, reports)| ProgramRecord { key, reports })
}

/// A scratch cache directory unique to this test binary run.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mc-cache-prop-{tag}-{}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn unit_record_roundtrips_exactly(rec in arb_unit()) {
        let compact: UnitRecord = mc_json::from_str(&mc_json::to_string(&rec)).unwrap();
        prop_assert_eq!(&compact, &rec);
        let pretty: UnitRecord = mc_json::from_str(&mc_json::to_string_pretty(&rec)).unwrap();
        prop_assert_eq!(&pretty, &rec);
    }

    #[test]
    fn component_record_roundtrips_exactly(rec in arb_component()) {
        let back: ComponentRecord = mc_json::from_str(&mc_json::to_string(&rec)).unwrap();
        prop_assert_eq!(back, rec);
    }

    #[test]
    fn program_record_roundtrips_exactly(rec in arb_program()) {
        let back: ProgramRecord = mc_json::from_str(&mc_json::to_string(&rec)).unwrap();
        prop_assert_eq!(back, rec);
    }

    #[test]
    fn truncated_record_rejected_never_panics(
        (rec, cut) in (arb_unit(), any::<usize>())
    ) {
        // Every strict prefix of a record document is invalid JSON (the
        // closing brace is the last byte); parsing must error, not panic.
        // Generated text is ASCII, so any byte index is a char boundary.
        let text = mc_json::to_string(&rec);
        let cut = cut % text.len(); // strictly less than len
        prop_assert!(mc_json::from_str::<UnitRecord>(&text[..cut]).is_err());
    }

    #[test]
    fn record_kinds_do_not_cross_parse(rec in arb_unit()) {
        // A unit document must not load as a component or program record
        // even though all three share the key/reports shape.
        let text = mc_json::to_string(&rec);
        prop_assert!(mc_json::from_str::<ComponentRecord>(&text).is_err());
        prop_assert!(mc_json::from_str::<ProgramRecord>(&text).is_err());
    }
}

proptest! {
    // Disk cases touch the filesystem; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn disk_store_then_load_is_identity(rec in arb_unit()) {
        let dir = scratch_dir("roundtrip");
        let cache = DiskCache::open(&dir).unwrap();
        cache.store_unit(&rec);
        prop_assert_eq!(cache.load_unit_by_source(rec.src_key).as_ref(), Some(&rec));
        prop_assert_eq!(cache.load_unit_by_ast(rec.ast_key).as_ref(), Some(&rec));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_or_mislabeled_file_is_a_miss(
        (rec, cut) in (arb_unit(), any::<usize>())
    ) {
        let dir = scratch_dir("corrupt");
        let cache = DiskCache::open(&dir).unwrap();
        let text = mc_json::to_string(&rec);

        // Truncated on disk: miss.
        let path = dir.join(format!("usrc-{}.json", key_hex(rec.src_key)));
        std::fs::write(&path, &text[..cut % text.len()]).unwrap();
        prop_assert_eq!(cache.load_unit_by_source(rec.src_key), None);

        // Valid record parked under the wrong key's filename: the embedded
        // key check makes it a miss instead of a wrong answer.
        let other = rec.src_key.wrapping_add(1);
        let wrong = dir.join(format!("usrc-{}.json", key_hex(other)));
        std::fs::write(&wrong, &text).unwrap();
        prop_assert_eq!(cache.load_unit_by_source(other), None);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
