//! The checker driver.

use crate::report::Report;
use mc_ast::{parse_translation_unit, Function, ParseError, TranslationUnit};
use mc_cfg::{run_machine, Cfg, Mode};
use mc_metal::{MetalMachine, MetalParseError, MetalProgram, MetalReport};
use std::fmt;

/// An error from driving a check run.
#[derive(Debug)]
pub enum DriverError {
    /// A source file failed to parse.
    Parse(ParseError),
    /// A metal program failed to parse.
    Metal(MetalParseError),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Parse(e) => write!(f, "{e}"),
            DriverError::Metal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<ParseError> for DriverError {
    fn from(e: ParseError) -> Self {
        DriverError::Parse(e)
    }
}

impl From<MetalParseError> for DriverError {
    fn from(e: MetalParseError) -> Self {
        DriverError::Metal(e)
    }
}

/// Everything a per-function checker may inspect.
#[derive(Debug, Clone, Copy)]
pub struct FunctionContext<'a> {
    /// File the function is defined in.
    pub file: &'a str,
    /// The whole translation unit (for prototypes, globals, structs).
    pub unit: &'a TranslationUnit,
    /// The function being checked.
    pub function: &'a Function,
    /// Its control-flow graph.
    pub cfg: &'a Cfg,
}

/// Everything a whole-program checker may inspect, after all per-function
/// passes ran.
#[derive(Debug, Clone, Copy)]
pub struct ProgramContext<'a> {
    /// All parsed units of the protocol, in input order.
    pub units: &'a [TranslationUnit],
}

impl ProgramContext<'_> {
    /// Iterates over every function definition in the program with its file.
    pub fn functions(&self) -> impl Iterator<Item = (&str, &Function)> {
        self.units
            .iter()
            .flat_map(|u| u.functions().map(move |f| (u.file.as_str(), f)))
    }
}

/// A native checker extension.
///
/// Implementations get a per-function hook and an optional whole-program
/// hook that runs after every function has been seen (the paper's two-pass
/// emit-and-link global framework; see [`crate::global`]).
pub trait Checker {
    /// Short name used in reports (e.g. `"buffer_mgmt"`).
    fn name(&self) -> &str;

    /// Checks one function.
    fn check_function(&mut self, ctx: &FunctionContext<'_>, sink: &mut Vec<Report>);

    /// Checks the whole program after all functions were visited.
    fn check_program(&mut self, ctx: &ProgramContext<'_>, sink: &mut Vec<Report>) {
        let _ = (ctx, sink);
    }
}

/// The analysis driver: a set of checkers plus traversal settings.
pub struct Driver {
    metal: Vec<MetalProgram>,
    native: Vec<Box<dyn Checker>>,
    /// Path traversal mode used for metal machines.
    pub mode: Mode,
}

impl fmt::Debug for Driver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Driver")
            .field("metal", &self.metal.iter().map(|m| &m.name).collect::<Vec<_>>())
            .field("native", &self.native.iter().map(|c| c.name()).collect::<Vec<_>>())
            .field("mode", &self.mode)
            .finish()
    }
}

impl Default for Driver {
    fn default() -> Self {
        Driver::new()
    }
}

impl Driver {
    /// Creates a driver with no checkers, using state-set traversal.
    pub fn new() -> Driver {
        Driver {
            metal: Vec::new(),
            native: Vec::new(),
            mode: Mode::StateSet,
        }
    }

    /// Registers a metal checker.
    pub fn add_metal_checker(&mut self, prog: MetalProgram) -> &mut Self {
        self.metal.push(prog);
        self
    }

    /// Parses and registers a metal checker from source text.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::Metal`] if the program does not parse.
    pub fn add_metal_source(&mut self, src: &str) -> Result<&mut Self, DriverError> {
        self.metal.push(MetalProgram::parse(src)?);
        Ok(self)
    }

    /// Registers a native checker extension.
    pub fn add_checker(&mut self, checker: Box<dyn Checker>) -> &mut Self {
        self.native.push(checker);
        self
    }

    /// Number of registered checkers (metal + native).
    pub fn checker_count(&self) -> usize {
        self.metal.len() + self.native.len()
    }

    /// Checks a single source string.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::Parse`] if the source does not parse.
    pub fn check_source(&mut self, src: &str, file: &str) -> Result<Vec<Report>, DriverError> {
        self.check_sources(&[(src.to_string(), file.to_string())])
    }

    /// Checks a set of `(source, file-name)` pairs as one program.
    ///
    /// All per-function checks run first (metal and native), then each
    /// native checker's whole-program pass.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::Parse`] on the first file that fails to parse.
    pub fn check_sources(
        &mut self,
        sources: &[(String, String)],
    ) -> Result<Vec<Report>, DriverError> {
        let mut units = Vec::new();
        for (src, file) in sources {
            units.push(parse_translation_unit(src, file)?);
        }
        Ok(self.check_units(&units))
    }

    /// Checks already-parsed translation units as one program.
    pub fn check_units(&mut self, units: &[TranslationUnit]) -> Vec<Report> {
        let mut reports = Vec::new();
        for unit in units {
            for function in unit.functions() {
                let cfg = Cfg::build(function);
                let ctx = FunctionContext {
                    file: &unit.file,
                    unit,
                    function,
                    cfg: &cfg,
                };
                for prog in &self.metal {
                    let mut machine = MetalMachine::new(prog);
                    let init = machine.start_state();
                    run_machine(&cfg, &mut machine, init, self.mode);
                    reports.extend(machine.reports.iter().map(|r| {
                        convert_metal_report(r, &unit.file, &function.name)
                    }));
                }
                for checker in &mut self.native {
                    checker.check_function(&ctx, &mut reports);
                }
            }
        }
        let ctx = ProgramContext { units };
        for checker in &mut self.native {
            checker.check_program(&ctx, &mut reports);
        }
        reports.sort();
        reports.dedup();
        reports
    }
}

fn convert_metal_report(r: &MetalReport, file: &str, function: &str) -> Report {
    if r.is_error {
        Report::error(&r.sm_name, file, function, r.span, &r.message)
    } else {
        Report::warning(&r.sm_name, file, function, r.span, &r.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Severity;
    use mc_ast::Span;

    const SM: &str = r#"
        sm wait_for_db {
            decl { scalar } addr, buf;
            start:
                { WAIT_FOR_DB_FULL(addr); } ==> stop
              | { MISCBUS_READ_DB(addr, buf); } ==> { err("Buffer not synchronized"); }
            ;
        }
    "#;

    #[test]
    fn metal_checker_via_driver() {
        let mut d = Driver::new();
        d.add_metal_source(SM).unwrap();
        let reports = d
            .check_source("void h(void) { MISCBUS_READ_DB(a, b); }", "h.c")
            .unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].checker, "wait_for_db");
        assert_eq!(reports[0].function, "h");
        assert_eq!(reports[0].file, "h.c");
        assert_eq!(reports[0].severity, Severity::Error);
    }

    #[test]
    fn multiple_files_one_program() {
        let mut d = Driver::new();
        d.add_metal_source(SM).unwrap();
        let reports = d
            .check_sources(&[
                ("void a(void) { MISCBUS_READ_DB(a, b); }".into(), "a.c".into()),
                ("void b(void) { WAIT_FOR_DB_FULL(x); MISCBUS_READ_DB(x, y); }".into(), "b.c".into()),
            ])
            .unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].file, "a.c");
    }

    /// A native checker that flags functions with more than `max` returns.
    struct ReturnCounter {
        max: usize,
        program_calls: usize,
    }

    impl Checker for ReturnCounter {
        fn name(&self) -> &str {
            "return_counter"
        }
        fn check_function(&mut self, ctx: &FunctionContext<'_>, sink: &mut Vec<Report>) {
            let exits = ctx.cfg.exits().len();
            if exits > self.max {
                sink.push(Report::error(
                    self.name(),
                    ctx.file,
                    &ctx.function.name,
                    ctx.function.span,
                    format!("{exits} exits, max {}", self.max),
                ));
            }
        }
        fn check_program(&mut self, _: &ProgramContext<'_>, _: &mut Vec<Report>) {
            self.program_calls += 1;
        }
    }

    #[test]
    fn native_checker_and_program_pass() {
        let mut d = Driver::new();
        d.add_checker(Box::new(ReturnCounter { max: 1, program_calls: 0 }));
        let reports = d
            .check_source(
                "void ok(void) { a(); }\nvoid bad(void) { if (x) { return; } b(); }",
                "t.c",
            )
            .unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].function, "bad");
    }

    #[test]
    fn parse_errors_are_reported() {
        let mut d = Driver::new();
        let err = d.check_source("void broken( {", "bad.c").unwrap_err();
        assert!(matches!(err, DriverError::Parse(_)));
    }

    #[test]
    fn bad_metal_source_rejected() {
        let mut d = Driver::new();
        assert!(d.add_metal_source("sm broken {").is_err());
    }

    #[test]
    fn reports_sorted_and_deduped() {
        let a = Report::error("c", "f.c", "g", Span::new(5, 1), "m");
        let b = Report::error("c", "f.c", "g", Span::new(2, 1), "m");
        let mut v = vec![a.clone(), b.clone(), a.clone()];
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].span.line, 2);
    }

    #[test]
    fn checker_count() {
        let mut d = Driver::new();
        d.add_metal_source(SM).unwrap();
        d.add_checker(Box::new(ReturnCounter { max: 0, program_calls: 0 }));
        assert_eq!(d.checker_count(), 2);
    }
}
