//! The checker driver: parse sources, build every function's CFG exactly
//! once, fan the per-function checks out over a worker pool, and merge the
//! results in a stable order so parallel and sequential runs are
//! byte-identical.
//!
//! Whole-program ("global") passes run once per *call-graph component*: the
//! units of a program are partitioned by who-calls-whom (see
//! [`call_components`]), and each [`Checker::check_program`] invocation sees
//! one component. Components are the unit of invalidation for the
//! incremental engine in [`crate::query`] — a global pass only re-runs when
//! a unit in its component changed — and running the batch driver the same
//! way keeps cold and warm reports byte-identical.

use crate::report::Report;
use crate::sched::{SchedMode, SchedStats};
use crate::summaries::Summaries;
use mc_ast::{parse_translation_unit, Fnv1a, Function, ParseError, TranslationUnit};
use mc_cfg::{
    feasibility_stats, run_traversal_with, Cfg, FnSummary, Mode, SummaryLookup, Traversal,
};
use mc_metal::{
    CompileError, CompiledMachine, CompiledProgram, MetalEngine, MetalMachine, MetalParseError,
    MetalProgram, MetalReport,
};
use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// An error from driving a check run.
#[derive(Debug)]
pub enum DriverError {
    /// A source file failed to parse.
    Parse(ParseError),
    /// A metal program failed to parse.
    Metal(MetalParseError),
    /// A metal program parsed but could not be lowered to a decision
    /// program (structurally impossible patterns, e.g. too many wildcards).
    MetalCompile(CompileError),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Parse(e) => write!(f, "{e}"),
            DriverError::Metal(e) => write!(f, "{e}"),
            DriverError::MetalCompile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<ParseError> for DriverError {
    fn from(e: ParseError) -> Self {
        DriverError::Parse(e)
    }
}

impl From<MetalParseError> for DriverError {
    fn from(e: MetalParseError) -> Self {
        DriverError::Metal(e)
    }
}

impl From<CompileError> for DriverError {
    fn from(e: CompileError) -> Self {
        DriverError::MetalCompile(e)
    }
}

/// A parsed translation unit plus the control-flow graph of every function
/// in it.
///
/// Building the CFG is the most expensive per-function step, and before
/// this cache existed it happened once in the driver and again in every
/// consumer that wanted path statistics. A `CheckedUnit` is built once
/// (usually by [`Driver::parse_units`]) and shared by the check pass, the
/// global emit/link pass, and the benchmark harness.
#[derive(Debug)]
pub struct CheckedUnit {
    /// The parsed unit.
    pub unit: TranslationUnit,
    /// One CFG per function definition, in `unit.functions()` order.
    pub cfgs: Vec<Cfg>,
    /// Lazily-computed per-function fingerprints, in definition order.
    /// Only the incremental engine touches these; batch runs pay nothing.
    fn_fps: OnceLock<Vec<mc_ast::FnFingerprint>>,
    /// Lazily-computed per-function callee-name lists, in definition
    /// order (what [`mc_cfg::collect_calls`] returns for each function).
    fn_calls: OnceLock<Vec<Vec<String>>>,
    /// Lazily-computed unit environment hash: non-function items plus the
    /// unit's written-global set (see [`CheckedUnit::env_fp`]).
    env_fp: OnceLock<u64>,
}

impl CheckedUnit {
    /// Builds the CFG of every function in `unit`.
    pub fn new(unit: TranslationUnit) -> CheckedUnit {
        let cfgs = unit.functions().map(Cfg::build).collect();
        CheckedUnit {
            unit,
            cfgs,
            fn_fps: OnceLock::new(),
            fn_calls: OnceLock::new(),
            env_fp: OnceLock::new(),
        }
    }

    /// Iterates `(function, cfg)` pairs in definition order.
    pub fn functions(&self) -> impl Iterator<Item = (&Function, &Cfg)> {
        self.unit.functions().zip(self.cfgs.iter())
    }

    /// Per-function fingerprints, in definition order (computed once per
    /// parse and shared for the unit's memo lifetime).
    pub fn fn_fingerprints(&self) -> &[mc_ast::FnFingerprint] {
        self.fn_fps.get_or_init(|| {
            self.unit
                .functions()
                .map(mc_ast::Fingerprint::of_function)
                .collect()
        })
    }

    /// Per-function callee-name lists, in definition order.
    pub fn fn_call_names(&self) -> &[Vec<String>] {
        self.fn_calls
            .get_or_init(|| self.unit.functions().map(mc_cfg::collect_calls).collect())
    }

    /// The unit's *environment* hash: everything outside function bodies
    /// that can influence a single function's checks — preprocessor lines
    /// and non-function items ([`mc_ast::Fingerprint::of_unit_env`]) plus
    /// the unit-wide set of identifiers assigned or address-taken in any
    /// body (witness refutation treats written globals as non-constants,
    /// so one function starting to write a global can flip verdicts in
    /// every other function of the unit).
    pub fn env_fp(&self) -> u64 {
        *self.env_fp.get_or_init(|| {
            let mut h = Fnv1a::new();
            h.write_u64(mc_ast::Fingerprint::of_unit_env(&self.unit));
            for name in crate::refute::written_globals(&self.unit) {
                h.write_str(&name);
            }
            h.finish()
        })
    }
}

/// Everything a per-function checker may inspect.
#[derive(Debug, Clone, Copy)]
pub struct FunctionContext<'a> {
    /// File the function is defined in.
    pub file: &'a str,
    /// The whole translation unit (for prototypes, globals, structs).
    pub unit: &'a TranslationUnit,
    /// The function being checked.
    pub function: &'a Function,
    /// Its control-flow graph.
    pub cfg: &'a Cfg,
    /// The traversal settings (mode and feasibility pruning) the driver was
    /// configured with; path-sensitive checkers should honor these instead
    /// of hard-coding a mode.
    pub traversal: Traversal,
    /// The function-summary store, when available.
    ///
    /// `Some` in two situations: during a normal check run with
    /// interprocedural analysis enabled ([`Driver::interproc`]), and while
    /// the summary engine is summarizing this very function (then it holds
    /// the partially-built store, with every callee below this function in
    /// bottom-up order already present). `None` means calls are opaque —
    /// the pre-summary behavior.
    pub summaries: Option<&'a Summaries>,
}

/// Everything a whole-program checker may inspect, after all per-function
/// passes ran.
///
/// A program pass sees one *call-graph component* at a time (see
/// [`call_components`]): `units` holds the member units of that component,
/// in input order. Code that never calls across a unit boundary therefore
/// sees one unit per pass; tightly-coupled protocol handlers see all of
/// their units together.
#[derive(Debug, Clone, Copy)]
pub struct ProgramContext<'a> {
    /// The checked units of this call-graph component, in input order.
    pub units: &'a [&'a CheckedUnit],
    /// The function-summary store for this component, present whenever any
    /// registered checker declares [`Checker::needs_summaries`] (the lane
    /// checker always does) or interprocedural analysis is enabled.
    pub summaries: Option<&'a Summaries>,
}

impl ProgramContext<'_> {
    /// Iterates over every function definition in the component with its
    /// file.
    pub fn functions(&self) -> impl Iterator<Item = (&str, &Function)> {
        self.units
            .iter()
            .flat_map(|u| u.unit.functions().map(move |f| (u.unit.file.as_str(), f)))
    }
}

/// A piece of per-function state emitted by a checker's function pass for
/// its whole-program pass (the "emit" half of the paper's emit-and-link
/// global framework).
pub type Fact = Box<dyn Any + Send + Sync>;

/// The accumulator handed to per-function hooks.
///
/// Function hooks run concurrently on worker threads, so checkers are
/// immutable (`&self`) while checking; everything a hook learns flows out
/// through its sink — diagnostics via [`CheckSink::push`], state for the
/// whole-program pass via [`CheckSink::emit`]. The driver merges sinks in
/// `(unit, function)` index order, never in completion order, which is why
/// parallel runs produce byte-identical reports.
#[derive(Default)]
pub struct CheckSink {
    pub(crate) reports: Vec<Report>,
    pub(crate) facts: Vec<Fact>,
}

impl fmt::Debug for CheckSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckSink")
            .field("reports", &self.reports)
            .field("facts", &self.facts.len())
            .finish()
    }
}

impl CheckSink {
    /// Creates an empty sink.
    pub fn new() -> CheckSink {
        CheckSink::default()
    }

    /// Records a diagnostic.
    pub fn push(&mut self, report: Report) {
        self.reports.push(report);
    }

    /// Emits a fact for the owning checker's whole-program pass.
    pub fn emit<F: Any + Send + Sync>(&mut self, fact: F) {
        self.facts.push(Box::new(fact));
    }

    /// The diagnostics recorded so far.
    pub fn reports(&self) -> &[Report] {
        &self.reports
    }

    /// Number of diagnostics recorded so far.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Returns `true` if no diagnostics were recorded.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Consumes the sink, returning its diagnostics.
    pub fn into_reports(self) -> Vec<Report> {
        self.reports
    }
}

/// A native checker extension.
///
/// Implementations get a per-function hook and an optional whole-program
/// hook that runs after every function has been seen (the paper's two-pass
/// emit-and-link global framework; see [`crate::summaries`]).
///
/// The per-function hook takes `&self` because the driver fans functions
/// out across worker threads; per-function state goes into the
/// [`CheckSink`], and cross-function state travels to [`check_program`]
/// as [`Fact`]s via [`CheckSink::emit`].
///
/// [`check_program`]: Checker::check_program
pub trait Checker: Send + Sync {
    /// Short name used in reports (e.g. `"buffer_mgmt"`).
    fn name(&self) -> &str;

    /// Checks one function. May run concurrently with other functions.
    fn check_function(&self, ctx: &FunctionContext<'_>, sink: &mut CheckSink);

    /// Whether this checker has a meaningful [`check_program`] pass.
    ///
    /// Defaults to `true` so external checkers that override
    /// [`check_program`] are always called. Purely-local checkers should
    /// return `false`: the driver then skips their program pass entirely,
    /// and the incremental engine never re-runs them for call-graph
    /// neighbours of an edited unit. A checker returning `false` never has
    /// its [`check_program`] invoked.
    ///
    /// [`check_program`]: Checker::check_program
    fn has_program_pass(&self) -> bool {
        true
    }

    /// Checks one call-graph component after all of its functions were
    /// visited.
    ///
    /// `facts` holds everything this checker emitted from its function
    /// passes over the component's units, in stable `(unit, function)`
    /// order regardless of which worker produced each fact. Only called
    /// when [`has_program_pass`] returns `true`.
    ///
    /// [`has_program_pass`]: Checker::has_program_pass
    fn check_program(&self, ctx: &ProgramContext<'_>, facts: Vec<Fact>, sink: &mut Vec<Report>) {
        let _ = (ctx, facts, sink);
    }

    /// Whether this checker requires function summaries even when
    /// interprocedural call-site resolution is disabled.
    ///
    /// The lane checker returns `true`: §7's quota analysis is inherently
    /// interprocedural (a handler's sends include its callees' sends), so
    /// the driver always computes summaries when it is registered. Checkers
    /// that merely *benefit* from summaries (msglen, buffer management)
    /// leave this `false` and participate only under `--interproc`.
    fn needs_summaries(&self) -> bool {
        false
    }

    /// Whether this checker's per-function output can depend on parts of
    /// the translation unit that the function-granular invalidation engine
    /// does not fingerprint — in practice, reading other functions' bodies
    /// through [`FunctionContext::unit`] outside the recorded dependency
    /// edges (same-unit callee bodies under refutation, callee summaries
    /// under interprocedural resolution).
    ///
    /// Defaults to `false`; none of the built-in checkers read the unit at
    /// all. A custom checker that does must return `true`, which makes the
    /// engine fall back to whole-unit invalidation — correctness over
    /// granularity.
    fn unit_sensitive(&self) -> bool {
        false
    }

    /// Contributes this checker's knowledge about one function to the
    /// function's summary.
    ///
    /// Called by the summary engine bottom-up over the call graph:
    /// `ctx.summaries` holds every already-summarized callee. `transfers`
    /// is `true` when the engine wants call-site state transfers computed
    /// (interprocedural mode, function not part of a call cycle); counter
    /// contributions (the lane analysis) should be computed regardless.
    fn summarize_function(
        &self,
        ctx: &FunctionContext<'_>,
        summary: &mut FnSummary,
        transfers: bool,
    ) {
        let _ = (ctx, summary, transfers);
    }
}

/// Per-function results, produced by whichever worker claimed the item and
/// merged by the driver in item order.
pub(crate) struct FunctionOutput {
    /// Reports from all metal checkers, in registration order.
    pub(crate) metal: Vec<Report>,
    /// One sink per native checker, in registration order.
    pub(crate) native: Vec<CheckSink>,
}

/// The merged local (per-function) results of one translation unit: its
/// diagnostics plus, per native checker, the facts destined for that
/// checker's program pass.
pub(crate) struct UnitLocal {
    /// Metal and native diagnostics in `(function, checker)` order.
    pub(crate) reports: Vec<Report>,
    /// Facts per native checker (registration order), each in function
    /// order.
    pub(crate) facts: Vec<Vec<Fact>>,
}

/// Version stamp folded into every cache key. Bump whenever the meaning or
/// layout of cached records changes in a way content addressing cannot see.
/// Old-version records are treated as plain cache misses (never errors), so
/// a bumped binary refills the cache on its first run and is byte-identical
/// warm-vs-cold from then on.
///
/// v3: reports carry structured witness `steps` (and summary traces became
/// structured), replacing the prose `trace` lines of v2.
///
/// v4: the metal engine choice joined the suite key and metal programs gain
/// load-time diagnostics, so records written by a v3 binary must not be
/// replayed as if they covered the same output.
///
/// v5: reports carry a refutation `verdict` and solver `model`, and the
/// refute flag joined the suite key; v4 records would replay without
/// verdicts and break warm/cold byte-identity under `--refute`.
///
/// v6: refutation became sound under ambiguous switch arms, wrapping `i64`
/// arithmetic, and assigned SHOUTING-case globals; v5 records may carry
/// verdicts the fixed engine would not produce.
///
/// v7: function-granular red/green invalidation added the per-file
/// `fnindex` record (per-function fingerprints, report slices, fact
/// counts, and recorded dependency edges); unit records are unchanged in
/// shape but are now assembled from per-function slices, so mixing them
/// with v6 records could replay stale per-function state.
pub const CACHE_FORMAT_VERSION: u32 = 7;

/// The analysis driver: a set of checkers plus traversal settings.
pub struct Driver {
    metal: Vec<MetalProgram>,
    /// Decision-program lowering of each entry of `metal`, index-aligned.
    compiled: Vec<CompiledProgram>,
    /// Where each metal program came from (a `--checker` file path), when
    /// known; used to locate load-time diagnostics.
    metal_origins: Vec<Option<String>>,
    metal_engine: MetalEngine,
    native: Vec<Box<dyn Checker>>,
    /// Path traversal mode used for metal machines.
    pub mode: Mode,
    prune: bool,
    interproc: bool,
    refute: bool,
    jobs: Option<usize>,
    sched: SchedMode,
    /// Scheduler counters accumulated across fan-outs; drained with
    /// [`Driver::take_sched_stats`]. Interior mutability because checking
    /// runs through `&self`.
    sched_stats: Mutex<SchedStats>,
    /// Running hash of the registered checker suite, folded at registration
    /// time; part of [`Driver::suite_key`].
    suite: Fnv1a,
    config_epoch: u64,
}

impl fmt::Debug for Driver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Driver")
            .field(
                "metal",
                &self.metal.iter().map(|m| &m.name).collect::<Vec<_>>(),
            )
            .field(
                "native",
                &self.native.iter().map(|c| c.name()).collect::<Vec<_>>(),
            )
            .field("mode", &self.mode)
            .field("prune", &self.prune)
            .field("interproc", &self.interproc)
            .field("refute", &self.refute)
            .field("jobs", &self.jobs)
            .field("sched", &self.sched)
            .finish()
    }
}

impl Default for Driver {
    fn default() -> Self {
        Driver::new()
    }
}

impl Driver {
    /// Creates a driver with no checkers, using state-set traversal with
    /// feasibility pruning and the machine's available parallelism.
    pub fn new() -> Driver {
        Driver {
            metal: Vec::new(),
            compiled: Vec::new(),
            metal_origins: Vec::new(),
            metal_engine: MetalEngine::default(),
            native: Vec::new(),
            mode: Mode::StateSet,
            prune: true,
            interproc: false,
            refute: false,
            jobs: None,
            sched: SchedMode::default(),
            sched_stats: Mutex::new(SchedStats::default()),
            suite: Fnv1a::new(),
            config_epoch: 0,
        }
    }

    /// Enables or disables path-feasibility pruning (default: enabled).
    ///
    /// With pruning off, traversals walk every syntactic path like the
    /// paper's xg++, reproducing its correlated-branch false positives.
    pub fn prune(&mut self, on: bool) -> &mut Self {
        self.prune = on;
        self
    }

    /// Whether the next check run prunes infeasible paths.
    pub fn prune_enabled(&self) -> bool {
        self.prune
    }

    /// Enables or disables interprocedural call-site resolution (default:
    /// disabled).
    ///
    /// When on, the driver computes a function summary for every definition
    /// bottom-up over the call graph and hands the store to every local
    /// traversal: a state machine sitting at a call to a summarized function
    /// follows the callee's state *transfer* instead of treating the call as
    /// opaque. This is how "length assigned in a helper" and "free via a
    /// wrapper" stop producing false positives.
    pub fn interproc(&mut self, on: bool) -> &mut Self {
        self.interproc = on;
        self
    }

    /// Whether the next check run resolves call sites through summaries.
    pub fn interproc_enabled(&self) -> bool {
        self.interproc
    }

    /// Enables or disables the symbolic refutation pass (default: disabled
    /// at the library level; the CLI turns it on).
    ///
    /// When on, every report's witness path is backward-sliced and run
    /// through the `mc-symx` SMT-lite executor: reports whose path
    /// condition is UNSAT are demoted to [`crate::Verdict::Refuted`]
    /// (confidence 0), satisfiable witnesses record a replayable solver
    /// model. Unknown constraints never refute — a report only drops when
    /// its path provably cannot execute.
    pub fn refute(&mut self, on: bool) -> &mut Self {
        self.refute = on;
        self
    }

    /// Whether the next check run decides reports symbolically.
    pub fn refute_enabled(&self) -> bool {
        self.refute
    }

    /// Whether the next check run computes function summaries at all —
    /// either because interprocedural resolution is on, or because a
    /// registered checker (the lane checker) demands them for its program
    /// pass.
    pub fn needs_summaries(&self) -> bool {
        self.interproc || self.native.iter().any(|c| c.needs_summaries())
    }

    /// The traversal settings the next check run will use.
    pub fn traversal(&self) -> Traversal {
        Traversal {
            mode: self.mode,
            prune: self.prune,
        }
    }

    /// Sets the worker-pool size used for parsing and function checking.
    ///
    /// `1` forces a fully sequential run (no threads are spawned). Values
    /// are clamped to at least one worker. Without an explicit setting the
    /// driver uses [`std::thread::available_parallelism`].
    pub fn jobs(&mut self, n: usize) -> &mut Self {
        self.jobs = Some(n.max(1));
        self
    }

    /// Sets or clears the worker-pool size: `None` restores the
    /// available-parallelism default. Long-lived hosts (the `mcheckd`
    /// daemon) use this to apply a per-request `jobs` hint without
    /// rebuilding the driver — safe because the worker count is not part
    /// of [`Driver::suite_key`] and never affects output.
    pub fn set_jobs(&mut self, jobs: Option<usize>) -> &mut Self {
        self.jobs = jobs.map(|n| n.max(1));
        self
    }

    /// The worker count the next check run will use.
    pub fn effective_jobs(&self) -> usize {
        self.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }

    /// Selects how the worker pool hands out task indices (default:
    /// [`SchedMode::Stealing`]).
    ///
    /// The mode never affects output — results are merged in index order
    /// either way — so, like `--jobs`, it is not part of
    /// [`Driver::suite_key`]. [`SchedMode::Fixed`] is kept for A/B
    /// benchmarking against the shared-counter pool.
    pub fn scheduler(&mut self, mode: SchedMode) -> &mut Self {
        self.sched = mode;
        self
    }

    /// The scheduling mode the next check run will use.
    pub fn scheduler_mode(&self) -> SchedMode {
        self.sched
    }

    /// Drains the scheduler counters accumulated since construction (or
    /// since the previous call), resetting them to zero.
    pub fn take_sched_stats(&self) -> SchedStats {
        std::mem::take(&mut self.sched_stats.lock().expect("sched stats lock"))
    }

    /// Registers a metal checker, lowering it to a decision program.
    ///
    /// Only the program *name* is folded into [`Driver::suite_key`] on this
    /// path — an already-parsed program carries no source text. Callers
    /// whose metal rules can change under the same name should bump the
    /// config epoch ([`Driver::set_config_epoch`]) or register via
    /// [`Driver::add_metal_source`], which folds the full source.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::MetalCompile`] if the program cannot be
    /// lowered (see [`mc_metal::CompileError`]; validation findings are
    /// warnings, not errors, and never reject a program).
    pub fn add_metal_checker(&mut self, prog: MetalProgram) -> Result<&mut Self, DriverError> {
        self.suite.write_str("metal-name:");
        self.suite.write_str(&prog.name);
        self.compiled.push(CompiledProgram::compile(&prog)?);
        self.metal.push(prog);
        self.metal_origins.push(None);
        Ok(self)
    }

    /// Parses and registers a metal checker from source text.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::Metal`] if the program does not parse, or
    /// [`DriverError::MetalCompile`] if it cannot be lowered.
    pub fn add_metal_source(&mut self, src: &str) -> Result<&mut Self, DriverError> {
        self.add_metal_source_impl(src, None)
    }

    /// Like [`Driver::add_metal_source`], also recording where the source
    /// came from (a checker file path). Load-time diagnostics
    /// ([`Driver::metal_load_diagnostics`]) are reported against the
    /// origin, so renderers can point at the offending `sm` rule's
    /// file:line.
    pub fn add_metal_source_from(
        &mut self,
        src: &str,
        origin: &str,
    ) -> Result<&mut Self, DriverError> {
        self.add_metal_source_impl(src, Some(origin.to_string()))
    }

    fn add_metal_source_impl(
        &mut self,
        src: &str,
        origin: Option<String>,
    ) -> Result<&mut Self, DriverError> {
        let prog = MetalProgram::parse(src)?;
        self.suite.write_str("metal-src:");
        self.suite.write_str(src);
        self.compiled.push(CompiledProgram::compile(&prog)?);
        self.metal.push(prog);
        self.metal_origins.push(origin);
        Ok(self)
    }

    /// Selects the metal execution engine (default:
    /// [`MetalEngine::Compiled`]).
    ///
    /// Both engines produce byte-identical reports; the interpreter is kept
    /// as a differential oracle and for the dispatch benchmark.
    pub fn set_metal_engine(&mut self, engine: MetalEngine) -> &mut Self {
        self.metal_engine = engine;
        self
    }

    /// The metal engine the next check run will use.
    pub fn metal_engine(&self) -> MetalEngine {
        self.metal_engine
    }

    /// Load-time diagnostics from lowering the registered metal programs:
    /// unreachable states, shadowed rules, unbound `%wildcard`
    /// interpolations, and unmatchable patterns, rendered as
    /// warning-severity reports against the checker source itself (the
    /// origin path when registered via [`Driver::add_metal_source_from`],
    /// a `<metal:NAME>` placeholder otherwise).
    pub fn metal_load_diagnostics(&self) -> Vec<Report> {
        let mut reports = Vec::new();
        for (i, cp) in self.compiled.iter().enumerate() {
            let file = match &self.metal_origins[i] {
                Some(origin) => origin.clone(),
                None => format!("<metal:{}>", cp.name()),
            };
            for diag in cp.diagnostics() {
                let mut r = Report::warning(
                    "metal-load",
                    file.clone(),
                    cp.name(),
                    diag.span,
                    format!("[{}] {}", diag.kind.code(), diag.message),
                );
                // Load problems are definite (the program text proves
                // them), but they are style findings, not violations.
                r.confidence = Report::DEFAULT_CONFIDENCE;
                reports.push(r);
            }
        }
        reports
    }

    /// Registers a native checker extension.
    ///
    /// Only the checker's *name* can be folded into [`Driver::suite_key`]
    /// (native code has no inspectable source); if a native checker's
    /// behaviour changes, the crate version bump covers built-ins and
    /// [`Driver::set_config_epoch`] covers embedders.
    pub fn add_checker(&mut self, checker: Box<dyn Checker>) -> &mut Self {
        self.suite.write_str("native:");
        self.suite.write_str(checker.name());
        self.native.push(checker);
        self
    }

    /// Sets the checker configuration epoch, folded into every cache key.
    ///
    /// Bump this whenever checker *inputs* the suite hash cannot see change
    /// — external spec files, rule tables, environment-driven settings.
    /// Runs under different epochs never share cached results.
    pub fn set_config_epoch(&mut self, epoch: u64) -> &mut Self {
        self.config_epoch = epoch;
        self
    }

    /// The current checker configuration epoch.
    pub fn config_epoch(&self) -> u64 {
        self.config_epoch
    }

    /// The key every cached artifact of this driver is scoped under.
    ///
    /// Folds the crate version, the cache format version, the registered
    /// checker suite, the config epoch, and the traversal settings (mode +
    /// prune flag). Two drivers with equal suite keys produce byte-identical
    /// reports for identical sources, so their cache entries may alias; any
    /// configuration difference this key cannot observe must be expressed
    /// through the config epoch. The worker-pool size is deliberately *not*
    /// part of the key: report output is independent of `--jobs`.
    pub fn suite_key(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str(env!("CARGO_PKG_VERSION"));
        h.write_u64(u64::from(CACHE_FORMAT_VERSION));
        h.write_u64(self.suite.finish());
        h.write_u64(self.config_epoch);
        h.write_str(&self.traversal().cache_token());
        h.write_str(if self.interproc {
            "interproc"
        } else {
            "nointerproc"
        });
        // Refutation rewrites verdicts and confidences in place, so cached
        // records from a refuting and a non-refuting run must never alias.
        h.write_str(if self.refute { "refute" } else { "norefute" });
        // The engines are differentially tested to produce identical
        // reports, but cached results must still never alias across them:
        // an engine bug would otherwise be masked (or unmasked) by whichever
        // engine happened to fill the cache first.
        h.write_str(self.metal_engine.as_str());
        h.finish()
    }

    /// The registered metal programs, in registration order.
    pub(crate) fn metal_programs(&self) -> &[MetalProgram] {
        &self.metal
    }

    /// The compiled form of the registered metal programs, index-aligned
    /// with [`Driver::metal_programs`].
    pub(crate) fn compiled_programs(&self) -> &[CompiledProgram] {
        &self.compiled
    }

    /// The registered native checkers, in registration order.
    pub(crate) fn native_checkers(&self) -> &[Box<dyn Checker>] {
        &self.native
    }

    /// Whether any registered native checker has a whole-program pass.
    pub(crate) fn has_program_checkers(&self) -> bool {
        self.native.iter().any(|c| c.has_program_pass())
    }

    /// Number of registered native checkers.
    pub(crate) fn native_count(&self) -> usize {
        self.native.len()
    }

    /// Whether any registered checker declares itself
    /// [`unit_sensitive`](Checker::unit_sensitive); the function-granular
    /// invalidation tier disables itself when one does.
    pub(crate) fn has_unit_sensitive_checkers(&self) -> bool {
        self.native.iter().any(|c| c.unit_sensitive())
    }

    /// Number of registered checkers (metal + native).
    pub fn checker_count(&self) -> usize {
        self.metal.len() + self.native.len()
    }

    /// Checks a single source string.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::Parse`] if the source does not parse.
    pub fn check_source(&self, src: &str, file: &str) -> Result<Vec<Report>, DriverError> {
        self.check_sources(&[(src.to_string(), file.to_string())])
    }

    /// Checks a set of `(source, file-name)` pairs as one program.
    ///
    /// All per-function checks run first (metal and native), then each
    /// native checker's whole-program pass.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::Parse`] on the first file (in input order)
    /// that fails to parse.
    pub fn check_sources(&self, sources: &[(String, String)]) -> Result<Vec<Report>, DriverError> {
        let units = self.parse_units(sources)?;
        Ok(self.check_units(&units))
    }

    /// Runs `f(0..n)` over the worker pool and returns the outputs in index
    /// order, regardless of which worker computed each item.
    ///
    /// This is the one scheduling primitive in the crate: batch parsing,
    /// per-function checking, and the incremental engine's query phases all
    /// fan out through it, so "parallel output == sequential output" has a
    /// single point of truth. With one effective worker no threads are
    /// spawned at all.
    pub(crate) fn pool_map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send + Sync,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.effective_jobs().min(n);
        if workers <= 1 {
            if n > 0 {
                let log = crate::sched::WorkerLog {
                    executed: n as u64,
                    ..Default::default()
                };
                self.sched_stats
                    .lock()
                    .expect("sched stats lock")
                    .absorb(&[log]);
            }
            return (0..n).map(f).collect();
        }
        let slots: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();
        let logs = match self.sched {
            SchedMode::Stealing => crate::sched::run_stealing(n, workers, |i| {
                let _ = slots[i].set(f(i));
            }),
            SchedMode::Fixed => {
                let next = AtomicUsize::new(0);
                let worker_logs: Vec<OnceLock<crate::sched::WorkerLog>> =
                    (0..workers).map(|_| OnceLock::new()).collect();
                std::thread::scope(|scope| {
                    for slot in &worker_logs {
                        scope.spawn(|| {
                            let mut log = crate::sched::WorkerLog::default();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                let _ = slots[i].set(f(i));
                                log.executed += 1;
                            }
                            let _ = slot.set(log);
                        });
                    }
                });
                worker_logs
                    .into_iter()
                    .map(|s| s.into_inner().unwrap_or_default())
                    .collect()
            }
        };
        self.sched_stats
            .lock()
            .expect("sched stats lock")
            .absorb(&logs);
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("every work item completed"))
            .collect()
    }

    /// Parses `(source, file-name)` pairs and builds every function's CFG,
    /// fanning the files out over the worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::Parse`] on the first file in *input* order
    /// that fails to parse, regardless of which worker hit the error first.
    pub fn parse_units(
        &self,
        sources: &[(String, String)],
    ) -> Result<Vec<CheckedUnit>, DriverError> {
        let parsed = self.pool_map(sources.len(), |i| {
            let (src, file) = &sources[i];
            parse_translation_unit(src, file).map(CheckedUnit::new)
        });
        let mut units = Vec::with_capacity(sources.len());
        for result in parsed {
            units.push(result?);
        }
        Ok(units)
    }

    /// Runs every registered checker's function pass over one function.
    ///
    /// `summaries` is `Some` only under [`Driver::interproc`]: local
    /// traversals then resolve call sites through the store.
    pub(crate) fn check_one_function(
        &self,
        unit: &CheckedUnit,
        function: &Function,
        cfg: &Cfg,
        summaries: Option<&Summaries>,
    ) -> FunctionOutput {
        let traversal = self.traversal();
        let oracle = summaries.map(|s| s as &dyn SummaryLookup);
        let ctx = FunctionContext {
            file: &unit.unit.file,
            unit: &unit.unit,
            function,
            cfg,
            traversal,
            summaries,
        };
        let mut metal = Vec::new();
        match self.metal_engine {
            MetalEngine::Compiled => {
                // One extraction walk serves every compiled program's plan.
                let refs: Vec<&mc_metal::CompiledProgram> = self.compiled.iter().collect();
                let plans = mc_metal::CandidatePlan::build_many(&refs, cfg);
                for (cp, plan) in self.compiled.iter().zip(&plans) {
                    let mut machine = CompiledMachine::with_plan(cp, plan);
                    let init = machine.start_state();
                    run_traversal_with(cfg, &mut machine, init, traversal, oracle);
                    metal.extend(
                        machine
                            .reports
                            .iter()
                            .map(|r| convert_metal_report(r, &unit.unit.file, &function.name)),
                    );
                }
            }
            MetalEngine::Interp => {
                for prog in &self.metal {
                    let mut machine = MetalMachine::new(prog);
                    let init = machine.start_state();
                    run_traversal_with(cfg, &mut machine, init, traversal, oracle);
                    metal.extend(
                        machine
                            .reports
                            .iter()
                            .map(|r| convert_metal_report(r, &unit.unit.file, &function.name)),
                    );
                }
            }
        }
        let mut native: Vec<CheckSink> = self
            .native
            .iter()
            .map(|checker| {
                let mut sink = CheckSink::new();
                checker.check_function(&ctx, &mut sink);
                sink
            })
            .collect();
        rank_function_reports(&mut metal, &mut native, function, cfg, traversal.prune);
        if self.refute {
            let has_witness = |r: &Report| !r.steps.is_empty();
            if metal.iter().any(has_witness)
                || native.iter().any(|s| s.reports.iter().any(has_witness))
            {
                let world = crate::refute::UnitWorld::new(&unit.unit);
                for r in metal
                    .iter_mut()
                    .chain(native.iter_mut().flat_map(|s| s.reports.iter_mut()))
                {
                    crate::refute::decide(r, function, &world);
                }
            }
        }
        FunctionOutput { metal, native }
    }

    /// Runs the local (per-function) passes of every given unit over the
    /// worker pool and merges the outputs per unit, in `(unit, function)`
    /// index order — never completion order.
    pub(crate) fn run_local_passes(
        &self,
        units: &[&CheckedUnit],
        summaries: Option<&Summaries>,
    ) -> Vec<UnitLocal> {
        // One work item per function definition, in program order.
        let fns: Vec<Vec<&Function>> = units.iter().map(|u| u.unit.functions().collect()).collect();
        let mut items: Vec<(usize, usize)> = Vec::new();
        for (u, fs) in fns.iter().enumerate() {
            for f in 0..fs.len() {
                items.push((u, f));
            }
        }

        let outputs = self.pool_map(items.len(), |i| {
            let (u, f) = items[i];
            self.check_one_function(units[u], fns[u][f], &units[u].cfgs[f], summaries)
        });

        let mut locals: Vec<UnitLocal> = units
            .iter()
            .map(|_| UnitLocal {
                reports: Vec::new(),
                facts: self.native.iter().map(|_| Vec::new()).collect(),
            })
            .collect();
        for (&(u, _), out) in items.iter().zip(outputs) {
            let local = &mut locals[u];
            local.reports.extend(out.metal);
            for (i, sink) in out.native.into_iter().enumerate() {
                local.reports.extend(sink.reports);
                local.facts[i].extend(sink.facts);
            }
        }
        locals
    }

    /// Re-runs only the fact-emitting passes of one function.
    ///
    /// [`Fact`]s are opaque `Any` values and cannot be cached, so when the
    /// incremental engine replays a function's *reports* from cache but
    /// its program pass still needs the function's facts, they are
    /// regenerated with this cheaper pass: metal machines and purely-local
    /// native checkers are skipped, and all diagnostics are discarded. The
    /// engine only calls it for functions whose cached fact counts are
    /// non-zero.
    pub(crate) fn collect_function_facts(
        &self,
        unit: &CheckedUnit,
        function: &Function,
        cfg: &Cfg,
        summaries: Option<&Summaries>,
    ) -> Vec<Vec<Fact>> {
        let traversal = self.traversal();
        let ctx = FunctionContext {
            file: &unit.unit.file,
            unit: &unit.unit,
            function,
            cfg,
            traversal,
            summaries,
        };
        let mut facts: Vec<Vec<Fact>> = self.native.iter().map(|_| Vec::new()).collect();
        for (i, checker) in self.native.iter().enumerate() {
            if !checker.has_program_pass() {
                continue;
            }
            let mut sink = CheckSink::new();
            checker.check_function(&ctx, &mut sink);
            facts[i].extend(sink.facts);
        }
        facts
    }

    /// Runs every program-pass checker over one call-graph component.
    ///
    /// `facts` is indexed by native-checker registration order and holds
    /// each checker's facts from the component's units, in `(unit,
    /// function)` order.
    pub(crate) fn run_program_passes(
        &self,
        units: &[&CheckedUnit],
        facts: Vec<Vec<Fact>>,
        summaries: Option<&Summaries>,
    ) -> Vec<Report> {
        let ctx = ProgramContext { units, summaries };
        let mut reports = Vec::new();
        for (checker, checker_facts) in self.native.iter().zip(facts) {
            if checker.has_program_pass() {
                checker.check_program(&ctx, checker_facts, &mut reports);
            }
        }
        if self.refute && !reports.is_empty() {
            let tus: Vec<&TranslationUnit> = units.iter().map(|u| &u.unit).collect();
            crate::refute::decide_program_reports(&tus, &mut reports);
        }
        reports
    }

    /// Checks already-parsed units as one program.
    ///
    /// Functions are tagged with their `(unit, function)` index, fanned out
    /// over the worker pool, and the per-function outputs are merged back
    /// in index order — so the final report vector does not depend on the
    /// worker count or on scheduling. Program passes then run once per
    /// call-graph component (see [`call_components`]), exactly as the
    /// incremental engine re-runs them, so batch and cached runs produce
    /// byte-identical reports.
    pub fn check_units(&self, units: &[CheckedUnit]) -> Vec<Report> {
        let refs: Vec<&CheckedUnit> = units.iter().collect();
        // One store over the whole batch: summaries are per-function and
        // bottom-up, so this is equivalent to computing them per call-graph
        // component (no summary ever crosses a component boundary).
        let summaries = if self.needs_summaries() {
            Some(Summaries::compute(self, &refs, self.interproc))
        } else {
            None
        };
        // Local traversals only see the store when call-site resolution is
        // on; the lane checker's program pass sees it regardless.
        let local_summaries = if self.interproc {
            summaries.as_ref()
        } else {
            None
        };
        let mut locals = self.run_local_passes(&refs, local_summaries);

        let mut reports = Vec::new();
        for local in &mut locals {
            reports.append(&mut local.reports);
        }

        if self.has_program_checkers() {
            let infos: Vec<CallInfo> = refs.iter().map(|u| call_info(&u.unit)).collect();
            for comp in call_components(&infos) {
                let members: Vec<&CheckedUnit> = comp.iter().map(|&i| refs[i]).collect();
                let mut facts: Vec<Vec<Fact>> = self.native.iter().map(|_| Vec::new()).collect();
                for &i in &comp {
                    for (ci, f) in locals[i].facts.iter_mut().enumerate() {
                        facts[ci].append(f);
                    }
                }
                reports.extend(self.run_program_passes(&members, facts, summaries.as_ref()));
            }
        }
        reports.sort();
        reports.dedup();
        reports
    }
}

/// The call-graph signature of one translation unit: which functions it
/// defines and which names it calls. Cheap to compute, serializable, and
/// sufficient to rebuild the unit-level call graph without re-parsing —
/// which is how the incremental engine partitions clean units into
/// components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallInfo {
    /// Names of functions the unit defines, in definition order.
    pub defines: Vec<String>,
    /// Names the unit's function bodies call, sorted and deduplicated.
    pub calls: Vec<String>,
}

/// Extracts the [`CallInfo`] of a parsed unit.
pub fn call_info(unit: &TranslationUnit) -> CallInfo {
    struct Calls(std::collections::BTreeSet<String>);
    impl mc_ast::Visitor for Calls {
        fn visit_expr(&mut self, expr: &mc_ast::Expr) {
            if let Some((callee, _)) = expr.as_call() {
                self.0.insert(callee.to_string());
            }
        }
    }
    let mut calls = Calls(std::collections::BTreeSet::new());
    let defines = unit
        .functions()
        .map(|f| {
            mc_ast::walk_function(&mut calls, f);
            f.name.clone()
        })
        .collect();
    CallInfo {
        defines,
        calls: calls.0.into_iter().collect(),
    }
}

/// Partitions units into weakly-connected components of the unit-level call
/// graph: unit A and unit B land in one component when A calls a function B
/// defines (or vice versa), transitively. Units that define the same name
/// are also joined — the linker cannot tell which definition a caller
/// binds to, so any doubt merges them.
///
/// This is a conservative over-approximation of the function-level SCCs a
/// precise engine would use: a component contains every call-graph SCC that
/// touches its units, so re-running a program pass per *component* re-runs
/// it for every SCC that could observe a changed unit. Components are
/// returned with members in input order, ordered by their first member.
pub fn call_components(infos: &[CallInfo]) -> Vec<Vec<usize>> {
    let n = infos.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    fn union(parent: &mut [usize], a: usize, b: usize) {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            // Root at the smaller index so iteration stays deterministic.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            parent[hi] = lo;
        }
    }

    let mut definers: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for (i, info) in infos.iter().enumerate() {
        for name in &info.defines {
            match definers.entry(name.as_str()) {
                std::collections::hash_map::Entry::Occupied(e) => union(&mut parent, *e.get(), i),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
            }
        }
    }
    for (i, info) in infos.iter().enumerate() {
        for name in &info.calls {
            if let Some(&d) = definers.get(name.as_str()) {
                union(&mut parent, i, d);
            }
        }
    }

    let mut comps: Vec<Vec<usize>> = Vec::new();
    let mut comp_of: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        match comp_of.entry(root) {
            std::collections::hash_map::Entry::Occupied(e) => comps[*e.get()].push(i),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(comps.len());
                comps.push(vec![i]);
            }
        }
    }
    comps
}

fn convert_metal_report(r: &MetalReport, file: &str, function: &str) -> Report {
    let mut report = if r.is_error {
        Report::error(&r.sm_name, file, function, r.span, &r.message)
    } else {
        Report::warning(&r.sm_name, file, function, r.span, &r.message)
    };
    report.steps = r.steps.clone();
    report
}

/// Ranking evidence gathered from one function's AST: the paper's manual
/// triage heuristics, automated. Handlers that reply with NAKs take
/// deliberately unusual paths (the paper ranked their reports last), and
/// reads feeding only debug printing are benign by construction.
struct RankScan {
    mentions_nak: bool,
    calls_debug: bool,
}

fn scan_for_ranking(function: &Function) -> RankScan {
    struct Scan {
        nak: bool,
        debug: bool,
    }
    impl mc_ast::Visitor for Scan {
        fn visit_expr(&mut self, expr: &mc_ast::Expr) {
            if let Some(name) = expr.as_ident() {
                if name == "MSG_NAK" || name.starts_with("MSG_NAK_") {
                    self.nak = true;
                }
            }
            if let Some((callee, _)) = expr.as_call() {
                if callee.contains("debug_print") {
                    self.debug = true;
                }
            }
        }
    }
    let mut s = Scan {
        nak: false,
        debug: false,
    };
    mc_ast::walk_function(&mut s, function);
    RankScan {
        mentions_nak: s.nak,
        calls_debug: s.debug,
    }
}

/// Assigns `confidence` and `pruned_paths` to every report of one function.
///
/// Confidence starts at [`Report::DEFAULT_CONFIDENCE`] and moves on
/// evidence: surviving a pruned traversal raises it; sitting in a function
/// whose CFG has refutable edges while pruning was *off* lowers it (the
/// report may live on an infeasible path — the paper's dominant FP class);
/// the NAK and debug-print heuristics lower it further.
fn rank_function_reports(
    metal: &mut [Report],
    native: &mut [CheckSink],
    function: &Function,
    cfg: &Cfg,
    prune: bool,
) {
    if metal.is_empty() && native.iter().all(|s| s.reports.is_empty()) {
        return;
    }
    let refuted = feasibility_stats(cfg).refuted_edges as u32;
    let scan = scan_for_ranking(function);
    let rank = |r: &mut Report| {
        let mut c = i32::from(Report::DEFAULT_CONFIDENCE);
        if prune {
            c += 15;
            r.pruned_paths = refuted;
        } else if refuted > 0 {
            c -= 25;
        }
        if scan.mentions_nak {
            c -= 15;
        }
        if scan.calls_debug {
            c -= 20;
        }
        r.confidence = c.clamp(0, 100) as u8;
    };
    for r in metal.iter_mut() {
        rank(r);
    }
    for sink in native {
        for r in sink.reports.iter_mut() {
            rank(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Severity;
    use mc_ast::Span;
    use std::sync::atomic::AtomicUsize;

    const SM: &str = r#"
        sm wait_for_db {
            decl { scalar } addr, buf;
            start:
                { WAIT_FOR_DB_FULL(addr); } ==> stop
              | { MISCBUS_READ_DB(addr, buf); } ==> { err("Buffer not synchronized"); }
            ;
        }
    "#;

    #[test]
    fn metal_checker_via_driver() {
        let mut d = Driver::new();
        d.add_metal_source(SM).unwrap();
        let reports = d
            .check_source("void h(void) { MISCBUS_READ_DB(a, b); }", "h.c")
            .unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].checker, "wait_for_db");
        assert_eq!(reports[0].function, "h");
        assert_eq!(reports[0].file, "h.c");
        assert_eq!(reports[0].severity, Severity::Error);
    }

    #[test]
    fn multiple_files_one_program() {
        let mut d = Driver::new();
        d.add_metal_source(SM).unwrap();
        let reports = d
            .check_sources(&[
                (
                    "void a(void) { MISCBUS_READ_DB(a, b); }".into(),
                    "a.c".into(),
                ),
                (
                    "void b(void) { WAIT_FOR_DB_FULL(x); MISCBUS_READ_DB(x, y); }".into(),
                    "b.c".into(),
                ),
            ])
            .unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].file, "a.c");
    }

    /// A native checker that flags functions with more than `max` returns
    /// and counts per-pass activity through the sink/fact machinery.
    struct ReturnCounter {
        max: usize,
        program_calls: AtomicUsize,
    }

    impl ReturnCounter {
        fn new(max: usize) -> ReturnCounter {
            ReturnCounter {
                max,
                program_calls: AtomicUsize::new(0),
            }
        }
    }

    impl Checker for ReturnCounter {
        fn name(&self) -> &str {
            "return_counter"
        }
        fn check_function(&self, ctx: &FunctionContext<'_>, sink: &mut CheckSink) {
            let exits = ctx.cfg.exits().len();
            sink.emit(exits);
            if exits > self.max {
                sink.push(Report::error(
                    self.name(),
                    ctx.file,
                    &ctx.function.name,
                    ctx.function.span,
                    format!("{exits} exits, max {}", self.max),
                ));
            }
        }
        fn check_program(&self, ctx: &ProgramContext<'_>, facts: Vec<Fact>, _: &mut Vec<Report>) {
            self.program_calls.fetch_add(1, Ordering::Relaxed);
            // One fact per function, delivered in program order.
            assert_eq!(facts.len(), ctx.functions().count());
            assert!(facts.iter().all(|f| f.is::<usize>()));
        }
    }

    #[test]
    fn native_checker_and_program_pass() {
        let mut d = Driver::new();
        d.add_checker(Box::new(ReturnCounter::new(1)));
        let reports = d
            .check_source(
                "void ok(void) { a(); }\nvoid bad(void) { if (x) { return; } b(); }",
                "t.c",
            )
            .unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].function, "bad");
    }

    #[test]
    fn parse_errors_are_reported() {
        let d = Driver::new();
        let err = d.check_source("void broken( {", "bad.c").unwrap_err();
        assert!(matches!(err, DriverError::Parse(_)));
    }

    #[test]
    fn parse_error_is_first_in_input_order() {
        // With many files and many workers, a later broken file may be
        // parsed before an earlier one; the reported error must still be
        // the first bad file in input order.
        let mut sources: Vec<(String, String)> = (0..32)
            .map(|i| (format!("void f{i}(void) {{ a(); }}"), format!("ok{i}.c")))
            .collect();
        sources[5] = ("void broken( {".into(), "bad5.c".into());
        sources[20] = ("void broken( {".into(), "bad20.c".into());
        let mut d = Driver::new();
        d.jobs(8);
        match d.check_sources(&sources).unwrap_err() {
            DriverError::Parse(e) => assert!(e.to_string().contains("bad5.c"), "{e}"),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn bad_metal_source_rejected() {
        let mut d = Driver::new();
        assert!(d.add_metal_source("sm broken {").is_err());
    }

    #[test]
    fn reports_sorted_and_deduped() {
        let a = Report::error("c", "f.c", "g", Span::new(5, 1), "m");
        let b = Report::error("c", "f.c", "g", Span::new(2, 1), "m");
        let mut v = vec![a.clone(), b.clone(), a.clone()];
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].span.line, 2);
    }

    #[test]
    fn checker_count() {
        let mut d = Driver::new();
        d.add_metal_source(SM).unwrap();
        d.add_checker(Box::new(ReturnCounter::new(0)));
        assert_eq!(d.checker_count(), 2);
    }

    #[test]
    fn jobs_clamped_and_defaulted() {
        let mut d = Driver::new();
        assert!(d.effective_jobs() >= 1);
        d.jobs(0);
        assert_eq!(d.effective_jobs(), 1);
        d.jobs(4);
        assert_eq!(d.effective_jobs(), 4);
    }

    #[test]
    fn parallel_and_sequential_runs_are_identical() {
        let many: Vec<(String, String)> = (0..16)
            .map(|i| {
                (
                    format!(
                        "void f{i}(void) {{ MISCBUS_READ_DB(a, b); }}\n\
                         void g{i}(void) {{ WAIT_FOR_DB_FULL(x); MISCBUS_READ_DB(x, y); }}"
                    ),
                    format!("u{i}.c"),
                )
            })
            .collect();
        let run = |jobs: usize| {
            let mut d = Driver::new();
            d.add_metal_source(SM).unwrap();
            d.add_checker(Box::new(ReturnCounter::new(0)));
            d.jobs(jobs);
            d.check_sources(&many).unwrap()
        };
        let sequential = run(1);
        assert_eq!(sequential.len(), 48); // 16 metal + 32 native reports
        for jobs in [2, 4, 8] {
            assert_eq!(run(jobs), sequential, "jobs={jobs}");
        }
    }

    #[test]
    fn correlated_branch_fp_pruned_by_default() {
        // The read is only reachable with `gMode` true, and every such path
        // waited first: the classic correlated-branch false positive. The
        // paper's xg++ (prune off) reports it; the default driver does not.
        let src = "void h(void) {\n\
                   if (gMode) { WAIT_FOR_DB_FULL(a); }\n\
                   mid();\n\
                   if (gMode) { MISCBUS_READ_DB(a, b); }\n\
                   }";
        let mut d = Driver::new();
        d.add_metal_source(SM).unwrap();
        assert!(d.prune_enabled());
        assert!(d.check_source(src, "h.c").unwrap().is_empty());

        let mut d = Driver::new();
        d.add_metal_source(SM).unwrap();
        d.prune(false);
        let reports = d.check_source(src, "h.c").unwrap();
        assert_eq!(reports.len(), 1);
        // Unpruned report in a function with refutable edges: low rank.
        assert!(reports[0].confidence < Report::DEFAULT_CONFIDENCE);
        assert_eq!(reports[0].pruned_paths, 0);
    }

    #[test]
    fn true_positives_survive_pruning_with_evidence() {
        let src = "void h(void) {\n\
                   if (gMode) { WAIT_FOR_DB_FULL(a); }\n\
                   if (!gMode) { MISCBUS_READ_DB(a, b); }\n\
                   }";
        // The read really can execute without a wait (gMode false), so it
        // must survive pruning — and carries the pruned-path evidence.
        let mut d = Driver::new();
        d.add_metal_source(SM).unwrap();
        let reports = d.check_source(src, "h.c").unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].confidence > Report::DEFAULT_CONFIDENCE);
        assert!(reports[0].pruned_paths > 0);
    }

    #[test]
    fn nak_and_debug_heuristics_lower_confidence() {
        let mut d = Driver::new();
        d.add_metal_source(SM).unwrap();
        let plain = d
            .check_source("void h(void) { MISCBUS_READ_DB(a, b); }", "h.c")
            .unwrap();
        let nak = d
            .check_source(
                "void h(void) { r = MSG_NAK; MISCBUS_READ_DB(a, b); }",
                "h.c",
            )
            .unwrap();
        let debug = d
            .check_source(
                "void h(void) { MISCBUS_READ_DB(a, b); flash_debug_print(b); }",
                "h.c",
            )
            .unwrap();
        assert!(nak[0].confidence < plain[0].confidence);
        assert!(debug[0].confidence < nak[0].confidence);
    }

    #[test]
    fn refutation_demotes_infeasible_witnesses() {
        // The read is guarded by `nak > 0` where `nak = credit - debit`
        // was just computed, under `credit == debit`: the path condition
        // is UNSAT. Feasibility pruning cannot see the arithmetic (it
        // correlates only identical conditions), so without refutation the
        // report survives.
        let src = "void h(void) {\n\
                   nak = gCredit - gDebit;\n\
                   if (gCredit == gDebit) {\n\
                   if (nak > 0) { MISCBUS_READ_DB(a, b); }\n\
                   }\n\
                   }";
        let mut d = Driver::new();
        d.add_metal_source(SM).unwrap();
        let plain = d.check_source(src, "h.c").unwrap();
        assert_eq!(plain.len(), 1);
        assert_eq!(plain[0].verdict, crate::Verdict::Unchecked);

        d.refute(true);
        let decided = d.check_source(src, "h.c").unwrap();
        assert_eq!(decided.len(), 1);
        assert_eq!(decided[0].verdict, crate::Verdict::Refuted);
        assert_eq!(decided[0].confidence, 0);
    }

    #[test]
    fn refutation_records_model_for_feasible_witnesses() {
        let src = "void h(void) {\n\
                   if (gLen > 4) { MISCBUS_READ_DB(a, b); }\n\
                   }";
        let mut d = Driver::new();
        d.add_metal_source(SM).unwrap();
        d.refute(true);
        let reports = d.check_source(src, "h.c").unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].verdict, crate::Verdict::Sat);
        let gl = reports[0]
            .model
            .iter()
            .find(|(k, _)| k == "gLen")
            .expect("gLen bound");
        assert!(
            gl.1 > 4,
            "model must satisfy the guard: {:?}",
            reports[0].model
        );
    }

    #[test]
    fn refutation_is_deterministic_across_jobs() {
        let many: Vec<(String, String)> = (0..12)
            .map(|i| {
                (
                    format!(
                        "void f{i}(void) {{\n\
                         nak = gCredit - gDebit;\n\
                         if (gCredit == gDebit) {{\n\
                         if (nak > 0) {{ MISCBUS_READ_DB(a, b); }}\n\
                         }}\n\
                         }}\n\
                         void g{i}(void) {{ if (gLen > {i}) {{ MISCBUS_READ_DB(x, y); }} }}"
                    ),
                    format!("u{i}.c"),
                )
            })
            .collect();
        let run = |jobs: usize| {
            let mut d = Driver::new();
            d.add_metal_source(SM).unwrap();
            d.refute(true);
            d.jobs(jobs);
            d.check_sources(&many).unwrap()
        };
        let sequential = run(1);
        assert_eq!(sequential.len(), 24);
        assert!(sequential
            .iter()
            .any(|r| r.verdict == crate::Verdict::Refuted));
        assert!(sequential.iter().any(|r| r.verdict == crate::Verdict::Sat));
        for jobs in [4, 8] {
            assert_eq!(run(jobs), sequential, "jobs={jobs}");
        }
    }

    #[test]
    fn refute_flag_changes_suite_key() {
        let mut a = Driver::new();
        let mut b = Driver::new();
        a.refute(true);
        b.refute(false);
        assert_ne!(a.suite_key(), b.suite_key());
    }

    #[test]
    fn checked_unit_builds_each_cfg_once() {
        let unit =
            parse_translation_unit("void a(void) { x(); }\nvoid b(void) { y(); }", "t.c").unwrap();
        let cu = CheckedUnit::new(unit);
        assert_eq!(cu.cfgs.len(), 2);
        let names: Vec<&str> = cu.functions().map(|(f, _)| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }
}
