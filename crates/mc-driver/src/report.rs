//! Checker diagnostics.

use mc_ast::Span;
use mc_cfg::PathStep;
use mc_json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// How serious a report is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// A rule violation (the paper's `err()`).
    Error,
    /// A suspicious construct (the paper's softer diagnostics).
    Warning,
}

impl ToJson for Severity {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for Severity {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("error") => Ok(Severity::Error),
            Some("warning") => Ok(Severity::Warning),
            _ => Err(JsonError::expected("\"error\" or \"warning\"")),
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// What the symbolic refutation pass decided about a report's witness path
/// (`--refute`; see the `mc-symx` crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Verdict {
    /// The pass did not run, or the witness could not be decided (lane
    /// traces, non-linear conditions, solver budget). Never evidence in
    /// either direction.
    #[default]
    Unchecked,
    /// The witness path condition is UNSAT: this path cannot execute.
    /// Dropped from default output.
    Refuted,
    /// The path condition is satisfiable; the solver produced a model but
    /// concrete replay did not (or could not) reproduce the violation.
    Sat,
    /// The solver model was replayed concretely in `mc-sim` and the
    /// violation reproduced: the report is evidence-backed.
    Confirmed,
}

impl Verdict {
    /// The JSON/SARIF/text rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Unchecked => "unchecked",
            Verdict::Refuted => "refuted",
            Verdict::Sat => "sat",
            Verdict::Confirmed => "confirmed",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl ToJson for Verdict {
    fn to_json(&self) -> Json {
        Json::Str(self.as_str().to_string())
    }
}

impl FromJson for Verdict {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("unchecked") => Ok(Verdict::Unchecked),
            Some("refuted") => Ok(Verdict::Refuted),
            Some("sat") => Ok(Verdict::Sat),
            Some("confirmed") => Ok(Verdict::Confirmed),
            _ => Err(JsonError::expected(
                "\"unchecked\", \"refuted\", \"sat\" or \"confirmed\"",
            )),
        }
    }
}

/// One diagnostic produced by a checker.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Report {
    /// Name of the checker that produced the report.
    pub checker: String,
    /// Severity.
    pub severity: Severity,
    /// File the violation is in.
    pub file: String,
    /// Function the violation is in (empty for file-level reports).
    pub function: String,
    /// Location of the violating construct.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
    /// The witness path: the execution steps that drive the checker's state
    /// machine into the violation, entry first. For inter-procedural
    /// reports the callee's summary steps are spliced in after the call
    /// step ("back trace" in the paper's terms). A step with an empty
    /// `file` is in the report's own file.
    pub steps: Vec<PathStep>,
    /// How likely the report is real, 0–100. Computed by the driver from
    /// pruned-path evidence and the paper's NAK-style ranking heuristics;
    /// reports built directly start at [`Report::DEFAULT_CONFIDENCE`].
    pub confidence: u8,
    /// Number of infeasible CFG edges the feasibility analysis refuted in
    /// the surrounding function (0 when pruning was disabled).
    pub pruned_paths: u32,
    /// What the symbolic refutation pass decided about the witness path
    /// ([`Verdict::Unchecked`] when the pass was off or undecided).
    pub verdict: Verdict,
    /// The concrete input that realizes the witness, as (global, value)
    /// pairs sorted by name. Non-empty only for [`Verdict::Sat`] /
    /// [`Verdict::Confirmed`] reports whose solver model bound replayable
    /// globals.
    pub model: Vec<(String, i64)>,
}

impl Report {
    /// Confidence assigned before any ranking evidence is applied.
    pub const DEFAULT_CONFIDENCE: u8 = 75;

    /// Creates an error report.
    pub fn error(
        checker: impl Into<String>,
        file: impl Into<String>,
        function: impl Into<String>,
        span: Span,
        message: impl Into<String>,
    ) -> Report {
        Report {
            checker: checker.into(),
            severity: Severity::Error,
            file: file.into(),
            function: function.into(),
            span,
            message: message.into(),
            steps: Vec::new(),
            confidence: Report::DEFAULT_CONFIDENCE,
            pruned_paths: 0,
            verdict: Verdict::default(),
            model: Vec::new(),
        }
    }

    /// Creates a warning report.
    pub fn warning(
        checker: impl Into<String>,
        file: impl Into<String>,
        function: impl Into<String>,
        span: Span,
        message: impl Into<String>,
    ) -> Report {
        Report {
            severity: Severity::Warning,
            ..Report::error(checker, file, function, span, message)
        }
    }

    /// A stable content fingerprint for baselines and run diffing.
    ///
    /// Hashes what the report *means* — checker, normalized file path,
    /// function, message, and the sequence of witness step notes — and
    /// deliberately excludes line/column numbers, confidence, and the
    /// refutation verdict/model, so a report keeps its fingerprint when
    /// unrelated edits shift it down the file, re-rank it, or change what
    /// the solver can decide about it (baselines match across `--refute`
    /// settings). Path normalization: backslashes become slashes
    /// and a leading `./` is dropped, so the same tree checked from
    /// different invocation styles agrees.
    pub fn fingerprint(&self) -> String {
        // FNV-1a, 64-bit: stable across platforms and releases, unlike
        // `DefaultHasher`, which documents no such guarantee.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
            // Field separator, so ("ab","c") never collides with ("a","bc").
            h ^= 0x1f;
            h = h.wrapping_mul(PRIME);
        };
        eat(self.checker.as_bytes());
        eat(normalize_path(&self.file).as_bytes());
        eat(self.function.as_bytes());
        eat(self.message.as_bytes());
        for step in &self.steps {
            eat(normalize_path(&step.file).as_bytes());
            eat(step.note.as_bytes());
        }
        format!("{h:016x}")
    }

    /// Sorts reports most-likely-real first: descending confidence. Equal
    /// confidence breaks ties by (file, line, checker) — source position
    /// before checker name, so a reviewer sweeps each file top to bottom —
    /// with the full derived order as the final tie-break.
    pub fn sort_by_confidence(reports: &mut [Report]) {
        reports.sort_by(|a, b| {
            b.confidence
                .cmp(&a.confidence)
                .then_with(|| a.file.cmp(&b.file))
                .then_with(|| a.span.line.cmp(&b.span.line))
                .then_with(|| a.checker.cmp(&b.checker))
                .then_with(|| a.cmp(b))
        });
    }
}

/// Slash-normalizes `p` and strips a leading `./`.
fn normalize_path(p: &str) -> String {
    let p = p.replace('\\', "/");
    p.strip_prefix("./").unwrap_or(&p).to_string()
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        mc_json::object(vec![
            ("checker", self.checker.to_json()),
            ("severity", self.severity.to_json()),
            ("file", self.file.to_json()),
            ("function", self.function.to_json()),
            ("span", self.span.to_json()),
            ("message", self.message.to_json()),
            ("steps", self.steps.to_json()),
            ("confidence", self.confidence.to_json()),
            ("pruned_paths", self.pruned_paths.to_json()),
            ("verdict", self.verdict.to_json()),
            // An object keyed by global name; `model` is sorted by name, so
            // the rendering is deterministic.
            (
                "model",
                Json::Object(
                    self.model
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v)))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for Report {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        // 101..=255 fits in a u8, so without this check an out-of-domain
        // value would load silently and corrupt ranking downstream.
        let confidence: u8 = match v.get("confidence") {
            // Absent in pre-pruning JSON; old reports carry no evidence
            // either way, so they keep the neutral default.
            None => Report::DEFAULT_CONFIDENCE,
            Some(_) => mc_json::field(v, "confidence")?,
        };
        if confidence > 100 {
            return Err(JsonError::expected("confidence in 0..=100"));
        }
        Ok(Report {
            checker: mc_json::field(v, "checker")?,
            severity: mc_json::field(v, "severity")?,
            file: mc_json::field(v, "file")?,
            function: mc_json::field(v, "function")?,
            span: mc_json::field(v, "span")?,
            message: mc_json::field(v, "message")?,
            // Absent in pre-witness JSON (which had prose `trace` lines
            // instead); those reports simply load without a path.
            steps: mc_json::field_or_default(v, "steps")?,
            confidence,
            pruned_paths: mc_json::field_or_default(v, "pruned_paths")?,
            // Absent in pre-refutation JSON; such reports were never
            // decided, which is exactly what `Unchecked` means.
            verdict: mc_json::field_or_default(v, "verdict")?,
            model: model_from_json(v)?,
        })
    }
}

/// Parses the `model` object back into sorted (global, value) pairs.
/// `mc-json` has no tuple impls, so this is spelled out by hand.
fn model_from_json(v: &Json) -> Result<Vec<(String, i64)>, JsonError> {
    let Some(m) = v.get("model") else {
        return Ok(Vec::new());
    };
    let fields = m
        .as_object()
        .ok_or_else(|| JsonError::expected("`model` to be an object"))?;
    let mut out = Vec::with_capacity(fields.len());
    for (k, val) in fields {
        match val {
            Json::Int(i) => out.push((k.clone(), *i)),
            _ => return Err(JsonError::expected("integer model values")),
        }
    }
    out.sort();
    Ok(out)
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: [{}] {}",
            self.file, self.span, self.severity, self.checker, self.message
        )?;
        if !self.function.is_empty() {
            write!(f, " (in {})", self.function)?;
        }
        for (i, step) in self.steps.iter().enumerate() {
            let file = if step.file.is_empty() {
                &self.file
            } else {
                &step.file
            };
            write!(f, "\n    {}. {}:{}: {}", i + 1, file, step.span, step.note)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let r = Report::error(
            "msglen",
            "bv.c",
            "PILocalGet",
            Span::new(10, 5),
            "data send, zero len",
        );
        let s = r.to_string();
        assert!(s.contains("bv.c:10:5"));
        assert!(s.contains("[msglen]"));
        assert!(s.contains("(in PILocalGet)"));
    }

    #[test]
    fn steps_rendered_numbered_with_full_locations() {
        let mut r = Report::error("lanes", "f.c", "h", Span::new(9, 1), "quota exceeded");
        r.steps = vec![
            PathStep::new(Span::new(2, 5), "branch taken"),
            PathStep {
                file: "helper.c".into(),
                span: Span::new(7, 3),
                note: "lane2 in helper".into(),
            },
        ];
        let s = r.to_string();
        // Steps with no file inherit the report's; all locations render
        // uniformly as file:line:col.
        assert!(s.contains("\n    1. f.c:2:5: branch taken"), "{s}");
        assert!(s.contains("\n    2. helper.c:7:3: lane2 in helper"), "{s}");
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error < Severity::Warning);
    }

    #[test]
    fn confidence_json_roundtrip() {
        use mc_json::{FromJson, Json, ToJson};
        let mut r = Report::error("buffer_mgmt", "f.c", "h", Span::new(3, 1), "leak");
        r.confidence = 40;
        r.pruned_paths = 2;
        r.steps = vec![PathStep::new(Span::new(2, 2), "statement")];
        let back = Report::from_json(&Json::parse(&r.to_json().to_compact()).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn legacy_json_defaults_confidence_and_steps() {
        use mc_json::{FromJson, Json};
        // Pre-pruning report JSON has no confidence/pruned_paths/steps.
        let src = r#"{"checker":"c","severity":"error","file":"f.c","function":"g",
                      "span":{"line":1,"col":1},"message":"m"}"#;
        let r = Report::from_json(&Json::parse(src).unwrap()).unwrap();
        assert_eq!(r.confidence, Report::DEFAULT_CONFIDENCE);
        assert_eq!(r.pruned_paths, 0);
        assert!(r.steps.is_empty());
    }

    #[test]
    fn out_of_range_confidence_rejected_on_load() {
        use mc_json::{FromJson, Json};
        // 101..=255 still fits in a u8; loading must fail loudly instead of
        // accepting a value outside the 0..=100 domain.
        let src = r#"{"checker":"c","severity":"error","file":"f.c","function":"g",
                      "span":{"line":1,"col":1},"message":"m","confidence":120}"#;
        assert!(Report::from_json(&Json::parse(src).unwrap()).is_err());
        // Values that overflow the u8 entirely are also errors, not wraps.
        let src = r#"{"checker":"c","severity":"error","file":"f.c","function":"g",
                      "span":{"line":1,"col":1},"message":"m","confidence":300}"#;
        assert!(Report::from_json(&Json::parse(src).unwrap()).is_err());
    }

    #[test]
    fn verdict_and_model_json_roundtrip() {
        use mc_json::{FromJson, Json, ToJson};
        let mut r = Report::error("send_wait", "f.c", "h", Span::new(3, 1), "missed wait");
        r.verdict = Verdict::Confirmed;
        r.model = vec![("gLen".into(), 5), ("gMode".into(), -1)];
        let js = r.to_json().to_compact();
        assert!(js.contains(r#""verdict":"confirmed""#), "{js}");
        assert!(js.contains(r#""gLen":5"#), "{js}");
        let back = Report::from_json(&Json::parse(&js).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn legacy_json_defaults_verdict_unchecked() {
        use mc_json::{FromJson, Json};
        let src = r#"{"checker":"c","severity":"error","file":"f.c","function":"g",
                      "span":{"line":1,"col":1},"message":"m"}"#;
        let r = Report::from_json(&Json::parse(src).unwrap()).unwrap();
        assert_eq!(r.verdict, Verdict::Unchecked);
        assert!(r.model.is_empty());
    }

    #[test]
    fn fingerprint_ignores_verdict_and_model() {
        // Baselines recorded without --refute must keep matching once the
        // solver starts deciding reports.
        let a = Report::error("msglen", "f.c", "h", Span::new(1, 1), "bad send");
        let mut b = a.clone();
        b.verdict = Verdict::Sat;
        b.model = vec![("gLen".into(), 9)];
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_stable_under_line_drift() {
        let mut a = Report::error("msglen", "f.c", "h", Span::new(10, 5), "bad send");
        a.steps = vec![PathStep::new(Span::new(3, 1), "branch taken")];
        let mut b = a.clone();
        // The construct moved down the file (and so did its witness), but
        // nothing semantic changed.
        b.span = Span::new(42, 9);
        b.steps = vec![PathStep::new(Span::new(35, 2), "branch taken")];
        b.confidence = 10;
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_content() {
        let a = Report::error("msglen", "f.c", "h", Span::new(1, 1), "bad send");
        let mut b = a.clone();
        b.message = "other".into();
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.checker = "lanes".into();
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = a.clone();
        d.steps = vec![PathStep::new(Span::new(1, 1), "branch taken")];
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn fingerprint_normalizes_path_styles() {
        let a = Report::error("c", "./dir/f.c", "h", Span::new(1, 1), "m");
        let b = Report::error("c", "dir\\f.c", "h", Span::new(1, 1), "m");
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn sort_by_confidence_ranks_descending_then_stable() {
        let mut low = Report::error("a", "f.c", "g", Span::new(1, 1), "m");
        low.confidence = 20;
        let mut hi = Report::warning("z", "f.c", "g", Span::new(9, 1), "m");
        hi.confidence = 90;
        let mid1 = Report::error("b", "f.c", "g", Span::new(2, 1), "m");
        let mid2 = Report::error("c", "f.c", "g", Span::new(3, 1), "m");
        let mut v = vec![mid2.clone(), low.clone(), hi.clone(), mid1.clone()];
        Report::sort_by_confidence(&mut v);
        assert_eq!(v, vec![hi, mid1, mid2, low]);
    }

    #[test]
    fn equal_confidence_ties_break_by_file_line_checker() {
        // All four reports share the default confidence; the order must be
        // (file, line, checker) — NOT checker-first, which would put the
        // a.c/z checker pair after b.c despite the smaller file name, and
        // NOT insertion order.
        let z_late = Report::error("z", "a.c", "g", Span::new(9, 1), "m");
        let b_early = Report::error("b", "a.c", "g", Span::new(2, 1), "m");
        let a_same_line = Report::error("a", "a.c", "g", Span::new(9, 1), "m");
        let a_other_file = Report::error("a", "b.c", "g", Span::new(1, 1), "m");
        let mut v = vec![
            a_other_file.clone(),
            z_late.clone(),
            b_early.clone(),
            a_same_line.clone(),
        ];
        Report::sort_by_confidence(&mut v);
        assert_eq!(v, vec![b_early, a_same_line, z_late, a_other_file]);
    }
}
