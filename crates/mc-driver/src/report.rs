//! Checker diagnostics.

use mc_ast::Span;
use mc_json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// How serious a report is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// A rule violation (the paper's `err()`).
    Error,
    /// A suspicious construct (the paper's softer diagnostics).
    Warning,
}

impl ToJson for Severity {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for Severity {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("error") => Ok(Severity::Error),
            Some("warning") => Ok(Severity::Warning),
            _ => Err(JsonError::expected("\"error\" or \"warning\"")),
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One diagnostic produced by a checker.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Report {
    /// Name of the checker that produced the report.
    pub checker: String,
    /// Severity.
    pub severity: Severity,
    /// File the violation is in.
    pub file: String,
    /// Function the violation is in (empty for file-level reports).
    pub function: String,
    /// Location of the violating construct.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
    /// For inter-procedural checkers: the call path that leads to the
    /// violation, innermost last ("back trace" in the paper's terms).
    pub trace: Vec<String>,
    /// How likely the report is real, 0–100. Computed by the driver from
    /// pruned-path evidence and the paper's NAK-style ranking heuristics;
    /// reports built directly start at [`Report::DEFAULT_CONFIDENCE`].
    pub confidence: u8,
    /// Number of infeasible CFG edges the feasibility analysis refuted in
    /// the surrounding function (0 when pruning was disabled).
    pub pruned_paths: u32,
}

impl Report {
    /// Confidence assigned before any ranking evidence is applied.
    pub const DEFAULT_CONFIDENCE: u8 = 75;

    /// Creates an error report.
    pub fn error(
        checker: impl Into<String>,
        file: impl Into<String>,
        function: impl Into<String>,
        span: Span,
        message: impl Into<String>,
    ) -> Report {
        Report {
            checker: checker.into(),
            severity: Severity::Error,
            file: file.into(),
            function: function.into(),
            span,
            message: message.into(),
            trace: Vec::new(),
            confidence: Report::DEFAULT_CONFIDENCE,
            pruned_paths: 0,
        }
    }

    /// Creates a warning report.
    pub fn warning(
        checker: impl Into<String>,
        file: impl Into<String>,
        function: impl Into<String>,
        span: Span,
        message: impl Into<String>,
    ) -> Report {
        Report {
            severity: Severity::Warning,
            ..Report::error(checker, file, function, span, message)
        }
    }

    /// Sorts reports most-likely-real first: descending confidence. Equal
    /// confidence breaks ties by (file, line, checker) — source position
    /// before checker name, so a reviewer sweeps each file top to bottom —
    /// with the full derived order as the final tie-break.
    pub fn sort_by_confidence(reports: &mut [Report]) {
        reports.sort_by(|a, b| {
            b.confidence
                .cmp(&a.confidence)
                .then_with(|| a.file.cmp(&b.file))
                .then_with(|| a.span.line.cmp(&b.span.line))
                .then_with(|| a.checker.cmp(&b.checker))
                .then_with(|| a.cmp(b))
        });
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        mc_json::object(vec![
            ("checker", self.checker.to_json()),
            ("severity", self.severity.to_json()),
            ("file", self.file.to_json()),
            ("function", self.function.to_json()),
            ("span", self.span.to_json()),
            ("message", self.message.to_json()),
            ("trace", self.trace.to_json()),
            ("confidence", self.confidence.to_json()),
            ("pruned_paths", self.pruned_paths.to_json()),
        ])
    }
}

impl FromJson for Report {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Report {
            checker: mc_json::field(v, "checker")?,
            severity: mc_json::field(v, "severity")?,
            file: mc_json::field(v, "file")?,
            function: mc_json::field(v, "function")?,
            span: mc_json::field(v, "span")?,
            message: mc_json::field(v, "message")?,
            trace: mc_json::field(v, "trace")?,
            // Absent in pre-pruning JSON; old reports carry no evidence
            // either way, so they keep the neutral default.
            confidence: match v.get("confidence") {
                None => Report::DEFAULT_CONFIDENCE,
                Some(_) => mc_json::field(v, "confidence")?,
            },
            pruned_paths: mc_json::field_or_default(v, "pruned_paths")?,
        })
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: [{}] {}",
            self.file, self.span, self.severity, self.checker, self.message
        )?;
        if !self.function.is_empty() {
            write!(f, " (in {})", self.function)?;
        }
        for line in &self.trace {
            write!(f, "\n    via {line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let r = Report::error(
            "msglen",
            "bv.c",
            "PILocalGet",
            Span::new(10, 5),
            "data send, zero len",
        );
        let s = r.to_string();
        assert!(s.contains("bv.c:10:5"));
        assert!(s.contains("[msglen]"));
        assert!(s.contains("(in PILocalGet)"));
    }

    #[test]
    fn trace_lines_rendered() {
        let mut r = Report::error("lanes", "f.c", "h", Span::new(1, 1), "quota exceeded");
        r.trace = vec!["h -> helper".into(), "helper: NI_SEND lane 2".into()];
        let s = r.to_string();
        assert!(s.contains("via h -> helper"));
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error < Severity::Warning);
    }

    #[test]
    fn confidence_json_roundtrip() {
        use mc_json::{FromJson, Json, ToJson};
        let mut r = Report::error("buffer_mgmt", "f.c", "h", Span::new(3, 1), "leak");
        r.confidence = 40;
        r.pruned_paths = 2;
        let back = Report::from_json(&Json::parse(&r.to_json().to_compact()).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn legacy_json_defaults_confidence() {
        use mc_json::{FromJson, Json};
        // Pre-pruning report JSON has no confidence/pruned_paths fields.
        let src = r#"{"checker":"c","severity":"error","file":"f.c","function":"g",
                      "span":{"line":1,"col":1},"message":"m","trace":[]}"#;
        let r = Report::from_json(&Json::parse(src).unwrap()).unwrap();
        assert_eq!(r.confidence, Report::DEFAULT_CONFIDENCE);
        assert_eq!(r.pruned_paths, 0);
    }

    #[test]
    fn sort_by_confidence_ranks_descending_then_stable() {
        let mut low = Report::error("a", "f.c", "g", Span::new(1, 1), "m");
        low.confidence = 20;
        let mut hi = Report::warning("z", "f.c", "g", Span::new(9, 1), "m");
        hi.confidence = 90;
        let mid1 = Report::error("b", "f.c", "g", Span::new(2, 1), "m");
        let mid2 = Report::error("c", "f.c", "g", Span::new(3, 1), "m");
        let mut v = vec![mid2.clone(), low.clone(), hi.clone(), mid1.clone()];
        Report::sort_by_confidence(&mut v);
        assert_eq!(v, vec![hi, mid1, mid2, low]);
    }

    #[test]
    fn equal_confidence_ties_break_by_file_line_checker() {
        // All four reports share the default confidence; the order must be
        // (file, line, checker) — NOT checker-first, which would put the
        // a.c/z checker pair after b.c despite the smaller file name, and
        // NOT insertion order.
        let z_late = Report::error("z", "a.c", "g", Span::new(9, 1), "m");
        let b_early = Report::error("b", "a.c", "g", Span::new(2, 1), "m");
        let a_same_line = Report::error("a", "a.c", "g", Span::new(9, 1), "m");
        let a_other_file = Report::error("a", "b.c", "g", Span::new(1, 1), "m");
        let mut v = vec![
            a_other_file.clone(),
            z_late.clone(),
            b_early.clone(),
            a_same_line.clone(),
        ];
        Report::sort_by_confidence(&mut v);
        assert_eq!(v, vec![b_early, a_same_line, z_late, a_other_file]);
    }
}
