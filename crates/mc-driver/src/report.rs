//! Checker diagnostics.

use mc_ast::Span;
use mc_json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// How serious a report is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// A rule violation (the paper's `err()`).
    Error,
    /// A suspicious construct (the paper's softer diagnostics).
    Warning,
}

impl ToJson for Severity {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for Severity {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("error") => Ok(Severity::Error),
            Some("warning") => Ok(Severity::Warning),
            _ => Err(JsonError::expected("\"error\" or \"warning\"")),
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One diagnostic produced by a checker.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Report {
    /// Name of the checker that produced the report.
    pub checker: String,
    /// Severity.
    pub severity: Severity,
    /// File the violation is in.
    pub file: String,
    /// Function the violation is in (empty for file-level reports).
    pub function: String,
    /// Location of the violating construct.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
    /// For inter-procedural checkers: the call path that leads to the
    /// violation, innermost last ("back trace" in the paper's terms).
    pub trace: Vec<String>,
}

impl Report {
    /// Creates an error report.
    pub fn error(
        checker: impl Into<String>,
        file: impl Into<String>,
        function: impl Into<String>,
        span: Span,
        message: impl Into<String>,
    ) -> Report {
        Report {
            checker: checker.into(),
            severity: Severity::Error,
            file: file.into(),
            function: function.into(),
            span,
            message: message.into(),
            trace: Vec::new(),
        }
    }

    /// Creates a warning report.
    pub fn warning(
        checker: impl Into<String>,
        file: impl Into<String>,
        function: impl Into<String>,
        span: Span,
        message: impl Into<String>,
    ) -> Report {
        Report {
            severity: Severity::Warning,
            ..Report::error(checker, file, function, span, message)
        }
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        mc_json::object(vec![
            ("checker", self.checker.to_json()),
            ("severity", self.severity.to_json()),
            ("file", self.file.to_json()),
            ("function", self.function.to_json()),
            ("span", self.span.to_json()),
            ("message", self.message.to_json()),
            ("trace", self.trace.to_json()),
        ])
    }
}

impl FromJson for Report {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Report {
            checker: mc_json::field(v, "checker")?,
            severity: mc_json::field(v, "severity")?,
            file: mc_json::field(v, "file")?,
            function: mc_json::field(v, "function")?,
            span: mc_json::field(v, "span")?,
            message: mc_json::field(v, "message")?,
            trace: mc_json::field(v, "trace")?,
        })
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: [{}] {}",
            self.file, self.span, self.severity, self.checker, self.message
        )?;
        if !self.function.is_empty() {
            write!(f, " (in {})", self.function)?;
        }
        for line in &self.trace {
            write!(f, "\n    via {line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let r = Report::error(
            "msglen",
            "bv.c",
            "PILocalGet",
            Span::new(10, 5),
            "data send, zero len",
        );
        let s = r.to_string();
        assert!(s.contains("bv.c:10:5"));
        assert!(s.contains("[msglen]"));
        assert!(s.contains("(in PILocalGet)"));
    }

    #[test]
    fn trace_lines_rendered() {
        let mut r = Report::error("lanes", "f.c", "h", Span::new(1, 1), "quota exceeded");
        r.trace = vec!["h -> helper".into(), "helper: NI_SEND lane 2".into()];
        let s = r.to_string();
        assert!(s.contains("via h -> helper"));
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error < Severity::Warning);
    }
}
