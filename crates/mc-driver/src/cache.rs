//! On-disk cache records for the incremental check engine.
//!
//! Every record is one mc-json document in one file under the cache
//! directory, named after the content-addressed key it answers
//! (`usrc-<key>.json`, `uast-<key>.json`, `comp-<key>.json`,
//! `sumy-<key>.json`, `prog-<key>.json`). Keys already fold the driver's
//! [`suite_key`](crate::Driver::suite_key), so one directory can be shared
//! by different checker suites, configurations, and crate versions without
//! cross-talk.
//!
//! The directory can be size-bounded ([`DiskCache::set_cap_bytes`]):
//! every store then evicts record files oldest-first until the directory
//! fits. Eviction only costs future hits — a capped cache produces
//! byte-identical reports to an unbounded one.
//!
//! The cache is *safety-first*: loads validate the record kind, format
//! version, and embedded key against the file they came from, and **any**
//! failure — missing file, unreadable file, JSON syntax error, wrong shape,
//! mismatched key — is a miss, never an error. Stores are best-effort
//! (write to a temp file, then rename into place; failures are swallowed):
//! a broken disk degrades a warm run into a cold run, nothing worse.

use crate::report::Report;
use mc_cfg::{CycleWarning, FnSummary};
use mc_json::{field, object, FromJson, Json, JsonError, ToJson};
use std::io;
use std::path::{Path, PathBuf};

pub use crate::driver::CACHE_FORMAT_VERSION;

/// Formats a cache key the way record files and fields spell it.
///
/// Keys are 64-bit hashes and routinely exceed `i64::MAX`, which mc-json
/// integers cannot hold losslessly, so keys are stored as fixed-width hex
/// strings.
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

fn key_from_json(v: &Json, name: &str) -> Result<u64, JsonError> {
    let s: String = field(v, name)?;
    if s.len() != 16 {
        return Err(JsonError::expected("16-digit hex key"));
    }
    u64::from_str_radix(&s, 16).map_err(|_| JsonError::expected("hex key"))
}

fn check_tag(v: &Json, kind: &str) -> Result<(), JsonError> {
    let k: String = field(v, "kind")?;
    if k != kind {
        return Err(JsonError(format!("record kind `{k}`, expected `{kind}`")));
    }
    let version: u32 = field(v, "version")?;
    if version != CACHE_FORMAT_VERSION {
        return Err(JsonError(format!("cache format version {version}")));
    }
    Ok(())
}

/// The cached local results of one translation unit.
///
/// Keyed two ways: by `src_key` (hash of the raw source text — the fast
/// path, no parsing needed) and by `ast_key` (hash of the parsed AST
/// including every node span — hit when only layout that displaces no
/// token changed). `defines`/`calls` are the unit's [`CallInfo`]
/// (`crate::call_info`), stored so the engine can rebuild the unit-level
/// call graph without re-parsing clean units.
///
/// [`CallInfo`]: crate::CallInfo
#[derive(Debug, Clone, PartialEq)]
pub struct UnitRecord {
    /// Key of the unit's raw source text (suite-scoped).
    pub src_key: u64,
    /// Key of the unit's parsed AST (suite-scoped).
    pub ast_key: u64,
    /// The component key the unit's local reports were computed under when
    /// interprocedural call-site resolution was on, `0` otherwise.
    ///
    /// With summaries in play a unit's local reports depend on its whole
    /// call-graph component, not just its own source: the engine compares
    /// this against the component key of the current run and demotes the
    /// record to dirty on mismatch.
    pub summary_key: u64,
    /// Function names the unit defines, in definition order.
    pub defines: Vec<String>,
    /// Function names the unit calls, sorted.
    pub calls: Vec<String>,
    /// The unit's local diagnostics, in `(function, checker)` order,
    /// exactly as a cold run produces them.
    pub reports: Vec<Report>,
}

impl ToJson for UnitRecord {
    fn to_json(&self) -> Json {
        object(vec![
            ("kind", Json::Str("unit".into())),
            ("version", CACHE_FORMAT_VERSION.to_json()),
            ("src_key", Json::Str(key_hex(self.src_key))),
            ("ast_key", Json::Str(key_hex(self.ast_key))),
            ("summary_key", Json::Str(key_hex(self.summary_key))),
            ("defines", self.defines.to_json()),
            ("calls", self.calls.to_json()),
            ("reports", self.reports.to_json()),
        ])
    }
}

impl FromJson for UnitRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        check_tag(v, "unit")?;
        Ok(UnitRecord {
            src_key: key_from_json(v, "src_key")?,
            ast_key: key_from_json(v, "ast_key")?,
            summary_key: key_from_json(v, "summary_key")?,
            defines: field(v, "defines")?,
            calls: field(v, "calls")?,
            reports: field(v, "reports")?,
        })
    }
}

/// The cached reports of one call-graph component's program passes.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentRecord {
    /// Key folding the suite key and every member unit's AST key.
    pub key: u64,
    /// The component's program-pass diagnostics in checker order.
    pub reports: Vec<Report>,
}

impl ToJson for ComponentRecord {
    fn to_json(&self) -> Json {
        object(vec![
            ("kind", Json::Str("component".into())),
            ("version", CACHE_FORMAT_VERSION.to_json()),
            ("key", Json::Str(key_hex(self.key))),
            ("reports", self.reports.to_json()),
        ])
    }
}

impl FromJson for ComponentRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        check_tag(v, "component")?;
        Ok(ComponentRecord {
            key: key_from_json(v, "key")?,
            reports: field(v, "reports")?,
        })
    }
}

/// The cached function summaries of one call-graph component.
///
/// Keyed exactly like [`ComponentRecord`] (suite key + every member
/// unit's AST key): summaries are a pure function of the component's
/// sources and the checker suite. Replaying a cached store instead of
/// recomputing it must be unobservable, so the full [`FnSummary`]
/// round-trips — counters, traces, transfers, clobbers, warnings.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRecord {
    /// Key folding the suite key and every member unit's AST key.
    pub key: u64,
    /// The component's function summaries, in function-name order.
    pub summaries: Vec<FnSummary>,
}

fn warning_to_json(w: &CycleWarning) -> Json {
    object(vec![
        ("function", Json::Str(w.function.clone())),
        ("keys", w.keys.to_json()),
        ("description", Json::Str(w.description.clone())),
    ])
}

fn warning_from_json(v: &Json) -> Result<CycleWarning, JsonError> {
    Ok(CycleWarning {
        function: field(v, "function")?,
        keys: field(v, "keys")?,
        description: field(v, "description")?,
    })
}

fn summary_to_json(s: &FnSummary) -> Json {
    object(vec![
        ("function", Json::Str(s.function.clone())),
        ("file", Json::Str(s.file.clone())),
        ("calls", s.calls.to_json()),
        ("counters", s.counters.to_json()),
        ("traces", s.traces.to_json()),
        ("transfers", s.transfers.to_json()),
        ("clobbers", s.clobbers.to_json()),
        (
            "warnings",
            Json::Array(s.warnings.iter().map(warning_to_json).collect()),
        ),
    ])
}

fn summary_from_json(v: &Json) -> Result<FnSummary, JsonError> {
    let warnings = v
        .get("warnings")
        .and_then(|w| w.as_array())
        .ok_or_else(|| JsonError::expected("warnings array"))?
        .iter()
        .map(warning_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(FnSummary {
        function: field(v, "function")?,
        file: field(v, "file")?,
        calls: field(v, "calls")?,
        counters: field(v, "counters")?,
        traces: field(v, "traces")?,
        transfers: field(v, "transfers")?,
        clobbers: field(v, "clobbers")?,
        warnings,
    })
}

impl ToJson for SummaryRecord {
    fn to_json(&self) -> Json {
        object(vec![
            ("kind", Json::Str("summaries".into())),
            ("version", CACHE_FORMAT_VERSION.to_json()),
            ("key", Json::Str(key_hex(self.key))),
            (
                "summaries",
                Json::Array(self.summaries.iter().map(summary_to_json).collect()),
            ),
        ])
    }
}

impl FromJson for SummaryRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        check_tag(v, "summaries")?;
        let summaries = v
            .get("summaries")
            .and_then(|s| s.as_array())
            .ok_or_else(|| JsonError::expected("summaries array"))?
            .iter()
            .map(summary_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SummaryRecord {
            key: key_from_json(v, "key")?,
            summaries,
        })
    }
}

/// Stable content hash of one function summary — the *interface hash* a
/// dependent function records when its reports consult this summary.
///
/// Hashing the serialized summary (rather than the inputs that produced
/// it) is what lets a callee body edit that leaves the summary unchanged
/// green-light every dependent.
pub fn summary_content_hash(s: &FnSummary) -> u64 {
    mc_ast::fnv1a(mc_json::to_string(&summary_to_json(s)).as_bytes())
}

/// One function's cached check results plus the reads they depended on,
/// as recorded by the function-granular red/green engine.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FnEntry {
    /// Function name.
    pub name: String,
    /// Span-folded body fingerprint ([`mc_ast::FnFingerprint::body`]).
    pub body_fp: u64,
    /// Signature/interface fingerprint ([`mc_ast::FnFingerprint::sig`]).
    pub sig_fp: u64,
    /// This function's local diagnostics, in checker order, exactly the
    /// slice a cold run contributes for it.
    pub reports: Vec<Report>,
    /// Program-pass facts emitted per native checker (registration
    /// order). Facts are opaque and never cached; the *counts* let the
    /// engine skip fact regeneration entirely for functions that emit
    /// none.
    pub fact_counts: Vec<u64>,
    /// Recorded same-unit reads: every function in this unit transitively
    /// reachable from this one through call edges, with its body
    /// fingerprint at check time. Witness refutation inlines same-file
    /// callee bodies, so a change to any of these can change this
    /// function's verdicts.
    pub local_deps: Vec<(String, u64)>,
    /// Recorded summary reads: every callee name this function's checks
    /// could resolve through the summary store, with the callee's summary
    /// content hash at check time ([`summary_content_hash`]), or `None`
    /// if the name had no summary (so a *newly appearing* summary also
    /// turns this function red).
    pub summary_deps: Vec<(String, Option<u64>)>,
}

fn dep_to_json(name: &str, hash: Option<u64>) -> Json {
    object(vec![
        ("name", Json::Str(name.into())),
        ("hash", Json::Str(hash.map(key_hex).unwrap_or_default())),
    ])
}

fn dep_from_json(v: &Json) -> Result<(String, Option<u64>), JsonError> {
    let name: String = field(v, "name")?;
    let s: String = field(v, "hash")?;
    if s.is_empty() {
        return Ok((name, None));
    }
    if s.len() != 16 {
        return Err(JsonError::expected("16-digit hex key"));
    }
    let h = u64::from_str_radix(&s, 16).map_err(|_| JsonError::expected("hex key"))?;
    Ok((name, Some(h)))
}

fn fn_entry_to_json(e: &FnEntry) -> Json {
    object(vec![
        ("name", Json::Str(e.name.clone())),
        ("body_fp", Json::Str(key_hex(e.body_fp))),
        ("sig_fp", Json::Str(key_hex(e.sig_fp))),
        ("reports", e.reports.to_json()),
        ("fact_counts", e.fact_counts.to_json()),
        (
            "local_deps",
            Json::Array(
                e.local_deps
                    .iter()
                    .map(|(n, fp)| dep_to_json(n, Some(*fp)))
                    .collect(),
            ),
        ),
        (
            "summary_deps",
            Json::Array(
                e.summary_deps
                    .iter()
                    .map(|(n, h)| dep_to_json(n, *h))
                    .collect(),
            ),
        ),
    ])
}

fn fn_entry_from_json(v: &Json) -> Result<FnEntry, JsonError> {
    let deps = |name: &str| -> Result<Vec<(String, Option<u64>)>, JsonError> {
        v.get(name)
            .and_then(|d| d.as_array())
            .ok_or_else(|| JsonError::expected("dep array"))?
            .iter()
            .map(dep_from_json)
            .collect()
    };
    let local_deps = deps("local_deps")?
        .into_iter()
        .map(|(n, h)| {
            h.map(|h| (n, h))
                .ok_or_else(|| JsonError::expected("body fp"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(FnEntry {
        name: field(v, "name")?,
        body_fp: key_from_json(v, "body_fp")?,
        sig_fp: key_from_json(v, "sig_fp")?,
        reports: field(v, "reports")?,
        fact_counts: field(v, "fact_counts")?,
        local_deps,
        summary_deps: deps("summary_deps")?,
    })
}

/// The per-function dependency index of one source file — the red/green
/// baseline a dirty file is diffed against.
///
/// Unlike the other records, which are immutable values at
/// content-addressed keys, this one lives at a *file-addressed* slot
/// (`H(suite, file name)`) and is overwritten whenever the file's checked
/// state moves: it always describes the latest snapshot the engine
/// produced for that file under that suite.
#[derive(Debug, Clone, PartialEq)]
pub struct FnIndexRecord {
    /// Key folding the suite key and the file name.
    pub key: u64,
    /// The unit's source key at snapshot time, for freshness checks
    /// without a parse.
    pub src_key: u64,
    /// The unit's environment hash at snapshot time
    /// ([`mc_ast::Fingerprint::of_unit_env`] plus the unit's written-global
    /// set).
    pub env_fp: u64,
    /// Per-function entries in definition order.
    pub functions: Vec<FnEntry>,
}

impl ToJson for FnIndexRecord {
    fn to_json(&self) -> Json {
        object(vec![
            ("kind", Json::Str("fnindex".into())),
            ("version", CACHE_FORMAT_VERSION.to_json()),
            ("key", Json::Str(key_hex(self.key))),
            ("src_key", Json::Str(key_hex(self.src_key))),
            ("env_fp", Json::Str(key_hex(self.env_fp))),
            (
                "functions",
                Json::Array(self.functions.iter().map(fn_entry_to_json).collect()),
            ),
        ])
    }
}

impl FromJson for FnIndexRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        check_tag(v, "fnindex")?;
        let functions = v
            .get("functions")
            .and_then(|f| f.as_array())
            .ok_or_else(|| JsonError::expected("functions array"))?
            .iter()
            .map(fn_entry_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FnIndexRecord {
            key: key_from_json(v, "key")?,
            src_key: key_from_json(v, "src_key")?,
            env_fp: key_from_json(v, "env_fp")?,
            functions,
        })
    }
}

/// The result of a function-index load: a corrupt record is still a miss
/// (any doubt ⇒ miss, never a panic), but the engine counts it loudly in
/// [`RunStats::fn_index_corrupt`](crate::RunStats::fn_index_corrupt).
#[derive(Debug)]
pub enum FnIndexLoad {
    /// A validated record.
    Hit(FnIndexRecord),
    /// No record stored under this key.
    Miss,
    /// A record file exists but fails to parse or validate.
    Corrupt,
}

/// The cached final report vector of one whole program run.
///
/// A hit short-circuits everything: when no source changed (and the suite
/// key matches), the engine returns these reports without parsing a single
/// file.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramRecord {
    /// Key folding the suite key and every unit's source key, in input
    /// order.
    pub key: u64,
    /// The sorted, deduplicated report vector of the whole run.
    pub reports: Vec<Report>,
}

impl ToJson for ProgramRecord {
    fn to_json(&self) -> Json {
        object(vec![
            ("kind", Json::Str("program".into())),
            ("version", CACHE_FORMAT_VERSION.to_json()),
            ("key", Json::Str(key_hex(self.key))),
            ("reports", self.reports.to_json()),
        ])
    }
}

impl FromJson for ProgramRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        check_tag(v, "program")?;
        Ok(ProgramRecord {
            key: key_from_json(v, "key")?,
            reports: field(v, "reports")?,
        })
    }
}

/// How long a claim file marks its record as in-flight. A claim older
/// than this belongs to a dead writer and may be taken over or evicted.
const CLAIM_TTL: std::time::Duration = std::time::Duration::from_secs(600);

/// A directory of cache record files.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
    cap_bytes: Option<u64>,
    /// When this handle was opened. Eviction never removes files modified
    /// at or after this stamp **unless this handle wrote them**, so
    /// concurrent writers sharing the directory (the shard farm) cannot
    /// evict each other's fresh records out from under a merge, while a
    /// single capped run still trims its own output to the bound.
    run_start: std::time::SystemTime,
    /// Record paths this handle wrote, shared across clones so a cloned
    /// handle keeps the same eviction identity.
    own: std::sync::Arc<std::sync::Mutex<std::collections::HashSet<PathBuf>>>,
}

impl DiskCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created. This is
    /// the only cache operation that reports failure — a cache dir the
    /// user asked for but cannot exist is a configuration error, while
    /// individual record problems later are silently treated as misses.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<DiskCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskCache {
            dir,
            cap_bytes: None,
            run_start: std::time::SystemTime::now(),
            own: std::sync::Arc::new(std::sync::Mutex::new(std::collections::HashSet::new())),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bounds the total size of record files in the directory.
    ///
    /// After every store, record files are evicted oldest-first (by
    /// modification time, ties broken by file name) until the directory is
    /// within `cap` bytes. `None` removes the bound. Eviction is invisible
    /// to correctness — an evicted record is simply a future miss.
    pub fn set_cap_bytes(&mut self, cap: Option<u64>) -> &mut Self {
        self.cap_bytes = cap;
        self
    }

    /// The configured size bound, if any.
    pub fn cap_bytes(&self) -> Option<u64> {
        self.cap_bytes
    }

    /// Evicts record files oldest-first until the directory fits the cap.
    ///
    /// Two classes of file are never evicted, so concurrent writers on a
    /// shared cache directory cannot starve each other:
    ///
    /// * files modified at or after this handle's `run_start` that this
    ///   handle did *not* write itself — a fresh record another shard
    ///   just stored may be read back momentarily (this handle's own
    ///   writes stay evictable, so a single capped run still honors the
    ///   bound);
    /// * records whose key is covered by a live claim file (see
    ///   [`DiskCache::claim`]) — the claiming writer is still working on
    ///   or relying on them. Claims older than [`CLAIM_TTL`] are dead and
    ///   protect nothing.
    ///
    /// The directory may therefore exceed the cap transiently during a
    /// concurrent run; the next store after the writers finish trims it.
    fn enforce_cap(&self) {
        let Some(cap) = self.cap_bytes else {
            return;
        };
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let now = std::time::SystemTime::now();
        let mut claimed: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut files: Vec<(std::time::SystemTime, PathBuf, u64)> = Vec::new();
        for e in entries.flatten() {
            let path = e.path();
            if path.extension().is_none_or(|x| x != "json") {
                continue;
            }
            let Ok(meta) = e.metadata() else { continue };
            let Ok(mtime) = meta.modified() else { continue };
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                if let Some(key) = stem.strip_prefix("clm-") {
                    let fresh = now
                        .duration_since(mtime)
                        .map(|age| age < CLAIM_TTL)
                        .unwrap_or(true);
                    if fresh {
                        claimed.insert(key.to_string());
                    }
                }
            }
            files.push((mtime, path, meta.len()));
        }
        let mut total: u64 = files.iter().map(|(_, _, len)| len).sum();
        if total <= cap {
            return;
        }
        files.sort();
        let own = self.own.lock().expect("own-writes lock");
        for (mtime, path, len) in files {
            if total <= cap {
                break;
            }
            if mtime >= self.run_start && !own.contains(&path) {
                continue;
            }
            let protected = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(|stem| stem.rsplit('-').next())
                .is_some_and(|key| claimed.contains(key));
            if protected {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                total -= len;
            }
        }
    }

    /// Claims `key` for this writer: returns `true` when the caller now
    /// holds the claim and should compute (and store) the record, `false`
    /// when another live writer already holds it.
    ///
    /// The claim is a `clm-<key>.json` file created with `create_new`, so
    /// exactly one concurrent writer wins a fresh key. A claim whose
    /// mtime is older than [`CLAIM_TTL`] belongs to a dead writer and is
    /// taken over. Claims are purely an optimization plus an eviction
    /// guard — never a correctness dependency: records are
    /// content-addressed and stored via tmp+rename, so two writers
    /// computing the same key merely duplicate work, and the last rename
    /// wins with identical bytes.
    pub fn claim(&self, key: u64) -> bool {
        let path = self.dir.join(format!("clm-{}.json", key_hex(key)));
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(_) => true,
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                let stale = std::fs::metadata(&path)
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|mt| std::time::SystemTime::now().duration_since(mt).ok())
                    .is_some_and(|age| age >= CLAIM_TTL);
                // Taking over a stale claim can race another taker; the
                // worst case is duplicated work, which is harmless.
                stale && std::fs::write(&path, b"").is_ok()
            }
            Err(_) => false,
        }
    }

    fn path(&self, prefix: &str, key: u64) -> PathBuf {
        self.dir.join(format!("{prefix}-{}.json", key_hex(key)))
    }

    /// Loads and validates one record file; any failure is a miss.
    fn load<T: FromJson>(&self, prefix: &str, key: u64) -> Option<T> {
        let text = std::fs::read_to_string(self.path(prefix, key)).ok()?;
        mc_json::from_str(&text).ok()
    }

    /// Writes `text` to `path` via a temp file + rename so concurrent
    /// readers never observe a half-written record. Best-effort: failures
    /// only cost future hits.
    fn store(&self, path: PathBuf, text: &str) {
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        if std::fs::write(&tmp, text).is_ok() {
            if std::fs::rename(&tmp, &path).is_err() {
                let _ = std::fs::remove_file(&tmp);
            } else {
                self.own.lock().expect("own-writes lock").insert(path);
            }
        }
        self.enforce_cap();
    }

    /// Looks a unit up by the hash of its raw source text.
    pub fn load_unit_by_source(&self, src_key: u64) -> Option<UnitRecord> {
        let rec: UnitRecord = self.load("usrc", src_key)?;
        (rec.src_key == src_key).then_some(rec)
    }

    /// Looks a unit up by the hash of its parsed AST (the fallback when
    /// only layout changed).
    pub fn load_unit_by_ast(&self, ast_key: u64) -> Option<UnitRecord> {
        let rec: UnitRecord = self.load("uast", ast_key)?;
        (rec.ast_key == ast_key).then_some(rec)
    }

    /// Stores a unit record under both of its keys.
    pub fn store_unit(&self, rec: &UnitRecord) {
        let text = mc_json::to_string(rec);
        self.store(self.path("usrc", rec.src_key), &text);
        self.store(self.path("uast", rec.ast_key), &text);
    }

    /// Looks up a component's program-pass reports.
    pub fn load_component(&self, key: u64) -> Option<ComponentRecord> {
        let rec: ComponentRecord = self.load("comp", key)?;
        (rec.key == key).then_some(rec)
    }

    /// Stores a component record.
    pub fn store_component(&self, rec: &ComponentRecord) {
        self.store(self.path("comp", rec.key), &mc_json::to_string(rec));
    }

    /// Looks up a component's cached function summaries.
    pub fn load_summaries(&self, key: u64) -> Option<SummaryRecord> {
        let rec: SummaryRecord = self.load("sumy", key)?;
        (rec.key == key).then_some(rec)
    }

    /// Stores a component's function summaries.
    pub fn store_summaries(&self, rec: &SummaryRecord) {
        self.store(self.path("sumy", rec.key), &mc_json::to_string(rec));
    }

    /// Looks up a file's per-function dependency index, distinguishing a
    /// missing record from a corrupt one so the engine can surface the
    /// latter as a stat.
    pub fn load_fn_index(&self, key: u64) -> FnIndexLoad {
        let Ok(text) = std::fs::read_to_string(self.path("fnidx", key)) else {
            return FnIndexLoad::Miss;
        };
        match mc_json::from_str::<FnIndexRecord>(&text) {
            Ok(rec) if rec.key == key => FnIndexLoad::Hit(rec),
            _ => FnIndexLoad::Corrupt,
        }
    }

    /// Stores (overwriting) a file's per-function dependency index.
    pub fn store_fn_index(&self, rec: &FnIndexRecord) {
        self.store(self.path("fnidx", rec.key), &mc_json::to_string(rec));
    }

    /// Looks up a whole run's final reports.
    pub fn load_program(&self, key: u64) -> Option<ProgramRecord> {
        let rec: ProgramRecord = self.load("prog", key)?;
        (rec.key == key).then_some(rec)
    }

    /// Stores a program record.
    pub fn store_program(&self, rec: &ProgramRecord) {
        self.store(self.path("prog", rec.key), &mc_json::to_string(rec));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_ast::Span;

    fn sample_unit() -> UnitRecord {
        UnitRecord {
            src_key: 0xdead_beef_dead_beef,
            ast_key: 0x1234_5678_9abc_def0,
            summary_key: 0,
            defines: vec!["NILocalGet".into(), "helper".into()],
            calls: vec!["NI_SEND".into(), "helper".into()],
            reports: vec![Report::error(
                "lanes",
                "p.c",
                "NILocalGet",
                Span::new(3, 5),
                "over quota",
            )],
        }
    }

    #[test]
    fn unit_record_roundtrip_exact() {
        let rec = sample_unit();
        let text = mc_json::to_string(&rec);
        let back: UnitRecord = mc_json::from_str(&text).unwrap();
        assert_eq!(rec, back);
        // Keys above i64::MAX survive (they are hex strings, not numbers).
        assert!(text.contains("deadbeefdeadbeef"));
    }

    #[test]
    fn wrong_kind_or_version_rejected() {
        let rec = sample_unit();
        let text = mc_json::to_string(&rec);
        let as_comp: Result<ComponentRecord, _> = mc_json::from_str(&text);
        assert!(as_comp.is_err());
        let current = format!("\"version\":{CACHE_FORMAT_VERSION}");
        assert!(text.contains(&current), "{text}");
        let bumped = text.replace(&current, "\"version\":999");
        let back: Result<UnitRecord, _> = mc_json::from_str(&bumped);
        assert!(back.is_err());
    }

    #[test]
    fn summary_record_roundtrip_exact() {
        let mut s = FnSummary {
            function: "NIRemoteGet".into(),
            file: "p.c".into(),
            calls: vec!["NI_SEND".into(), "helper".into()],
            clobbers: vec!["gLen".into(), "h->len".into()],
            ..FnSummary::default()
        };
        s.counters.insert("lane2".into(), 2);
        s.traces.insert(
            "lane2".into(),
            vec![mc_cfg::PathStep {
                file: "p.c".into(),
                span: mc_ast::Span::new(3, 5),
                note: "lane2 in helper".into(),
            }],
        );
        let mut per_state = std::collections::BTreeMap::new();
        per_state.insert("zero_len".into(), vec!["nonzero_len".into()]);
        per_state.insert("all".into(), Vec::new());
        s.transfers.insert("msglen".into(), per_state);
        s.warnings.push(CycleWarning {
            function: "helper".into(),
            keys: vec!["lane2".into()],
            description: "cycle with side effects in `helper`".into(),
        });
        let rec = SummaryRecord {
            key: 0xfeed_face_feed_face,
            summaries: vec![s],
        };
        let text = mc_json::to_string(&rec);
        let back: SummaryRecord = mc_json::from_str(&text).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn cap_evicts_oldest_record_files_first() {
        let dir = std::env::temp_dir().join(format!("mc-cache-cap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut rec = sample_unit();
        // First run: store the soon-to-be-old pair.
        DiskCache::open(&dir).unwrap().store_unit(&rec);
        let one = mc_json::to_string(&rec).len() as u64;
        // Each store writes two files (usrc + uast); a cap below three
        // files' worth forces the older pair out when the new one lands.
        let cap = one * 3 - 1;
        // Second run (fresh handle, later run_start): files from the
        // first run are older than this run and evictable.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut cache = DiskCache::open(&dir).unwrap();
        cache.set_cap_bytes(Some(cap));
        rec.src_key += 1;
        rec.ast_key += 1;
        cache.store_unit(&rec);
        // The newer record survives; the older pair was evicted.
        assert_eq!(cache.load_unit_by_source(rec.src_key), Some(rec.clone()));
        assert_eq!(cache.load_unit_by_source(rec.src_key - 1), None);
        let total: u64 = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.metadata().unwrap().len())
            .sum();
        assert!(total <= cap, "{total}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cap_never_evicts_a_concurrent_writers_fresh_records() {
        // Two concurrent writers share a directory; writer `a` has a cap
        // far below what the pair stores. `a` may trim its *own* records
        // to honor the cap, but must never remove `b`'s fresh files — a
        // concurrent shard's record has to survive until the merge can
        // read it.
        let dir = std::env::temp_dir().join(format!("mc-cache-live-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut a = DiskCache::open(&dir).unwrap();
        a.set_cap_bytes(Some(1));
        let b = DiskCache::open(&dir).unwrap();
        let base = sample_unit();
        for i in 0..3u64 {
            let mut rec = base.clone();
            rec.src_key = base.src_key + i;
            rec.ast_key = base.ast_key + i;
            b.store_unit(&rec);
        }
        // `a`'s store triggers its eviction pass; `b`'s records are newer
        // than `a.run_start` and not `a`'s own, so all three survive.
        let mut own = base.clone();
        own.src_key = base.src_key + 100;
        own.ast_key = base.ast_key + 100;
        a.store_unit(&own);
        for i in 0..3u64 {
            assert!(
                b.load_unit_by_source(base.src_key + i).is_some(),
                "record {i} of a concurrent writer was evicted"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cap_never_evicts_claimed_records() {
        let dir = std::env::temp_dir().join(format!("mc-cache-clm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Run 1: store two records; claim the first one (a live writer
        // still depends on it).
        let old = DiskCache::open(&dir).unwrap();
        let kept = sample_unit();
        let mut gone = sample_unit();
        gone.src_key += 100;
        gone.ast_key += 100;
        old.store_unit(&kept);
        old.store_unit(&gone);
        assert!(old.claim(kept.src_key));
        // Run 2: a tiny cap forces eviction of run-1 files — but the
        // claimed record (and the claim itself) must survive.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut cache = DiskCache::open(&dir).unwrap();
        cache.set_cap_bytes(Some(1));
        let mut fresh = sample_unit();
        fresh.src_key += 200;
        fresh.ast_key += 200;
        cache.store_unit(&fresh);
        assert!(
            cache.load_unit_by_source(kept.src_key).is_some(),
            "claimed record was evicted"
        );
        assert!(cache.load_unit_by_source(gone.src_key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn claim_is_exclusive_per_key() {
        let dir = std::env::temp_dir().join(format!("mc-cache-claimx-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = DiskCache::open(&dir).unwrap();
        let b = DiskCache::open(&dir).unwrap();
        assert!(a.claim(42));
        assert!(!b.claim(42), "second writer must lose a fresh claim");
        assert!(b.claim(43));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn sample_fn_index() -> FnIndexRecord {
        FnIndexRecord {
            key: 0xabcd_ef01_2345_6789,
            src_key: 0x1111_2222_3333_4444,
            env_fp: 0x5555_6666_7777_8888,
            functions: vec![FnEntry {
                name: "NILocalGet".into(),
                body_fp: 0x9999_aaaa_bbbb_cccc,
                sig_fp: 0xdddd_eeee_ffff_0000,
                reports: vec![Report::error(
                    "buffer_mgmt",
                    "p.c",
                    "NILocalGet",
                    Span::new(9, 3),
                    "buffer used after free",
                )],
                fact_counts: vec![0, 2, 0],
                local_deps: vec![("helper".into(), 0x0123_4567_89ab_cdef)],
                summary_deps: vec![
                    ("NI_SEND".into(), None),
                    ("helper".into(), Some(0xfedc_ba98_7654_3210)),
                ],
            }],
        }
    }

    #[test]
    fn fn_index_roundtrip_exact() {
        let rec = sample_fn_index();
        let text = mc_json::to_string(&rec);
        let back: FnIndexRecord = mc_json::from_str(&text).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn fn_index_corrupt_record_is_a_loud_miss_not_a_panic() {
        let dir = std::env::temp_dir().join(format!("mc-cache-fnidx-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DiskCache::open(&dir).unwrap();
        let rec = sample_fn_index();
        assert!(matches!(cache.load_fn_index(rec.key), FnIndexLoad::Miss));
        cache.store_fn_index(&rec);
        match cache.load_fn_index(rec.key) {
            FnIndexLoad::Hit(back) => assert_eq!(back, rec),
            other => panic!("expected hit, got {other:?}"),
        }
        // Truncated JSON, wrong embedded key, wrong version: all corrupt.
        let path = dir.join(format!("fnidx-{}.json", key_hex(rec.key)));
        std::fs::write(&path, "{\"kind\":\"fnindex\",garbage").unwrap();
        assert!(matches!(cache.load_fn_index(rec.key), FnIndexLoad::Corrupt));
        let mut other = rec.clone();
        other.key += 1;
        std::fs::write(&path, mc_json::to_string(&other)).unwrap();
        assert!(matches!(cache.load_fn_index(rec.key), FnIndexLoad::Corrupt));
        let bumped = mc_json::to_string(&rec).replace(
            &format!("\"version\":{CACHE_FORMAT_VERSION}"),
            "\"version\":999",
        );
        std::fs::write(&path, bumped).unwrap();
        assert!(matches!(cache.load_fn_index(rec.key), FnIndexLoad::Corrupt));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_content_hash_tracks_summary_content_only() {
        let mut a = FnSummary {
            function: "helper".into(),
            file: "p.c".into(),
            ..FnSummary::default()
        };
        let b = a.clone();
        assert_eq!(summary_content_hash(&a), summary_content_hash(&b));
        a.counters.insert("lane2".into(), 1);
        assert_ne!(summary_content_hash(&a), summary_content_hash(&b));
    }

    #[test]
    fn disk_roundtrip_and_key_validation() {
        let dir = std::env::temp_dir().join(format!("mc-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DiskCache::open(&dir).unwrap();
        let rec = sample_unit();
        cache.store_unit(&rec);
        assert_eq!(cache.load_unit_by_source(rec.src_key), Some(rec.clone()));
        assert_eq!(cache.load_unit_by_ast(rec.ast_key), Some(rec.clone()));
        assert_eq!(cache.load_unit_by_source(rec.src_key + 1), None);

        // Corrupt the stored file: load degrades to a miss.
        let path = dir.join(format!("usrc-{}.json", key_hex(rec.src_key)));
        std::fs::write(&path, "{\"kind\":\"unit\",garbage").unwrap();
        assert_eq!(cache.load_unit_by_source(rec.src_key), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
