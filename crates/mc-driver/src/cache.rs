//! On-disk cache records for the incremental check engine.
//!
//! Every record is one mc-json document in one file under the cache
//! directory, named after the content-addressed key it answers
//! (`usrc-<key>.json`, `uast-<key>.json`, `comp-<key>.json`,
//! `prog-<key>.json`). Keys already fold the driver's
//! [`suite_key`](crate::Driver::suite_key), so one directory can be shared
//! by different checker suites, configurations, and crate versions without
//! cross-talk.
//!
//! The cache is *safety-first*: loads validate the record kind, format
//! version, and embedded key against the file they came from, and **any**
//! failure — missing file, unreadable file, JSON syntax error, wrong shape,
//! mismatched key — is a miss, never an error. Stores are best-effort
//! (write to a temp file, then rename into place; failures are swallowed):
//! a broken disk degrades a warm run into a cold run, nothing worse.

use crate::report::Report;
use mc_json::{field, object, FromJson, Json, JsonError, ToJson};
use std::io;
use std::path::{Path, PathBuf};

pub use crate::driver::CACHE_FORMAT_VERSION;

/// Formats a cache key the way record files and fields spell it.
///
/// Keys are 64-bit hashes and routinely exceed `i64::MAX`, which mc-json
/// integers cannot hold losslessly, so keys are stored as fixed-width hex
/// strings.
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

fn key_from_json(v: &Json, name: &str) -> Result<u64, JsonError> {
    let s: String = field(v, name)?;
    if s.len() != 16 {
        return Err(JsonError::expected("16-digit hex key"));
    }
    u64::from_str_radix(&s, 16).map_err(|_| JsonError::expected("hex key"))
}

fn check_tag(v: &Json, kind: &str) -> Result<(), JsonError> {
    let k: String = field(v, "kind")?;
    if k != kind {
        return Err(JsonError(format!("record kind `{k}`, expected `{kind}`")));
    }
    let version: u32 = field(v, "version")?;
    if version != CACHE_FORMAT_VERSION {
        return Err(JsonError(format!("cache format version {version}")));
    }
    Ok(())
}

/// The cached local results of one translation unit.
///
/// Keyed two ways: by `src_key` (hash of the raw source text — the fast
/// path, no parsing needed) and by `ast_key` (hash of the parsed AST
/// including every node span — hit when only layout that displaces no
/// token changed). `defines`/`calls` are the unit's [`CallInfo`]
/// (`crate::call_info`), stored so the engine can rebuild the unit-level
/// call graph without re-parsing clean units.
///
/// [`CallInfo`]: crate::CallInfo
#[derive(Debug, Clone, PartialEq)]
pub struct UnitRecord {
    /// Key of the unit's raw source text (suite-scoped).
    pub src_key: u64,
    /// Key of the unit's parsed AST (suite-scoped).
    pub ast_key: u64,
    /// Function names the unit defines, in definition order.
    pub defines: Vec<String>,
    /// Function names the unit calls, sorted.
    pub calls: Vec<String>,
    /// The unit's local diagnostics, in `(function, checker)` order,
    /// exactly as a cold run produces them.
    pub reports: Vec<Report>,
}

impl ToJson for UnitRecord {
    fn to_json(&self) -> Json {
        object(vec![
            ("kind", Json::Str("unit".into())),
            ("version", CACHE_FORMAT_VERSION.to_json()),
            ("src_key", Json::Str(key_hex(self.src_key))),
            ("ast_key", Json::Str(key_hex(self.ast_key))),
            ("defines", self.defines.to_json()),
            ("calls", self.calls.to_json()),
            ("reports", self.reports.to_json()),
        ])
    }
}

impl FromJson for UnitRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        check_tag(v, "unit")?;
        Ok(UnitRecord {
            src_key: key_from_json(v, "src_key")?,
            ast_key: key_from_json(v, "ast_key")?,
            defines: field(v, "defines")?,
            calls: field(v, "calls")?,
            reports: field(v, "reports")?,
        })
    }
}

/// The cached reports of one call-graph component's program passes.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentRecord {
    /// Key folding the suite key and every member unit's AST key.
    pub key: u64,
    /// The component's program-pass diagnostics in checker order.
    pub reports: Vec<Report>,
}

impl ToJson for ComponentRecord {
    fn to_json(&self) -> Json {
        object(vec![
            ("kind", Json::Str("component".into())),
            ("version", CACHE_FORMAT_VERSION.to_json()),
            ("key", Json::Str(key_hex(self.key))),
            ("reports", self.reports.to_json()),
        ])
    }
}

impl FromJson for ComponentRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        check_tag(v, "component")?;
        Ok(ComponentRecord {
            key: key_from_json(v, "key")?,
            reports: field(v, "reports")?,
        })
    }
}

/// The cached final report vector of one whole program run.
///
/// A hit short-circuits everything: when no source changed (and the suite
/// key matches), the engine returns these reports without parsing a single
/// file.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramRecord {
    /// Key folding the suite key and every unit's source key, in input
    /// order.
    pub key: u64,
    /// The sorted, deduplicated report vector of the whole run.
    pub reports: Vec<Report>,
}

impl ToJson for ProgramRecord {
    fn to_json(&self) -> Json {
        object(vec![
            ("kind", Json::Str("program".into())),
            ("version", CACHE_FORMAT_VERSION.to_json()),
            ("key", Json::Str(key_hex(self.key))),
            ("reports", self.reports.to_json()),
        ])
    }
}

impl FromJson for ProgramRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        check_tag(v, "program")?;
        Ok(ProgramRecord {
            key: key_from_json(v, "key")?,
            reports: field(v, "reports")?,
        })
    }
}

/// A directory of cache record files.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created. This is
    /// the only cache operation that reports failure — a cache dir the
    /// user asked for but cannot exist is a configuration error, while
    /// individual record problems later are silently treated as misses.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<DiskCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, prefix: &str, key: u64) -> PathBuf {
        self.dir.join(format!("{prefix}-{}.json", key_hex(key)))
    }

    /// Loads and validates one record file; any failure is a miss.
    fn load<T: FromJson>(&self, prefix: &str, key: u64) -> Option<T> {
        let text = std::fs::read_to_string(self.path(prefix, key)).ok()?;
        mc_json::from_str(&text).ok()
    }

    /// Writes `text` to `path` via a temp file + rename so concurrent
    /// readers never observe a half-written record. Best-effort: failures
    /// only cost future hits.
    fn store(&self, path: PathBuf, text: &str) {
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Looks a unit up by the hash of its raw source text.
    pub fn load_unit_by_source(&self, src_key: u64) -> Option<UnitRecord> {
        let rec: UnitRecord = self.load("usrc", src_key)?;
        (rec.src_key == src_key).then_some(rec)
    }

    /// Looks a unit up by the hash of its parsed AST (the fallback when
    /// only layout changed).
    pub fn load_unit_by_ast(&self, ast_key: u64) -> Option<UnitRecord> {
        let rec: UnitRecord = self.load("uast", ast_key)?;
        (rec.ast_key == ast_key).then_some(rec)
    }

    /// Stores a unit record under both of its keys.
    pub fn store_unit(&self, rec: &UnitRecord) {
        let text = mc_json::to_string(rec);
        self.store(self.path("usrc", rec.src_key), &text);
        self.store(self.path("uast", rec.ast_key), &text);
    }

    /// Looks up a component's program-pass reports.
    pub fn load_component(&self, key: u64) -> Option<ComponentRecord> {
        let rec: ComponentRecord = self.load("comp", key)?;
        (rec.key == key).then_some(rec)
    }

    /// Stores a component record.
    pub fn store_component(&self, rec: &ComponentRecord) {
        self.store(self.path("comp", rec.key), &mc_json::to_string(rec));
    }

    /// Looks up a whole run's final reports.
    pub fn load_program(&self, key: u64) -> Option<ProgramRecord> {
        let rec: ProgramRecord = self.load("prog", key)?;
        (rec.key == key).then_some(rec)
    }

    /// Stores a program record.
    pub fn store_program(&self, rec: &ProgramRecord) {
        self.store(self.path("prog", rec.key), &mc_json::to_string(rec));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_ast::Span;

    fn sample_unit() -> UnitRecord {
        UnitRecord {
            src_key: 0xdead_beef_dead_beef,
            ast_key: 0x1234_5678_9abc_def0,
            defines: vec!["NILocalGet".into(), "helper".into()],
            calls: vec!["NI_SEND".into(), "helper".into()],
            reports: vec![Report::error(
                "lanes",
                "p.c",
                "NILocalGet",
                Span::new(3, 5),
                "over quota",
            )],
        }
    }

    #[test]
    fn unit_record_roundtrip_exact() {
        let rec = sample_unit();
        let text = mc_json::to_string(&rec);
        let back: UnitRecord = mc_json::from_str(&text).unwrap();
        assert_eq!(rec, back);
        // Keys above i64::MAX survive (they are hex strings, not numbers).
        assert!(text.contains("deadbeefdeadbeef"));
    }

    #[test]
    fn wrong_kind_or_version_rejected() {
        let rec = sample_unit();
        let text = mc_json::to_string(&rec);
        let as_comp: Result<ComponentRecord, _> = mc_json::from_str(&text);
        assert!(as_comp.is_err());
        let bumped = text.replace("\"version\":1", "\"version\":999");
        let back: Result<UnitRecord, _> = mc_json::from_str(&bumped);
        assert!(back.is_err());
    }

    #[test]
    fn disk_roundtrip_and_key_validation() {
        let dir = std::env::temp_dir().join(format!("mc-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DiskCache::open(&dir).unwrap();
        let rec = sample_unit();
        cache.store_unit(&rec);
        assert_eq!(cache.load_unit_by_source(rec.src_key), Some(rec.clone()));
        assert_eq!(cache.load_unit_by_ast(rec.ast_key), Some(rec.clone()));
        assert_eq!(cache.load_unit_by_source(rec.src_key + 1), None);

        // Corrupt the stored file: load degrades to a miss.
        let path = dir.join(format!("usrc-{}.json", key_hex(rec.src_key)));
        std::fs::write(&path, "{\"kind\":\"unit\",garbage").unwrap();
        assert_eq!(cache.load_unit_by_source(rec.src_key), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
