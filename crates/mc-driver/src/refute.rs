//! The symbolic refutation pass: every report's witness path is replayed
//! through the `mc-symx` slice + SMT-lite executor, and the decision lands
//! on the report as a [`Verdict`].
//!
//! The pass runs inside the per-function check (and once more over
//! program-pass reports), so the incremental engine caches *decided*
//! reports: warm and cold runs carry byte-identical verdicts. Soundness
//! policy is inherited from `mc-symx` — only a proven-UNSAT path condition
//! refutes; anything the executor cannot decide leaves the report
//! [`Verdict::Unchecked`].

use crate::report::{Report, Verdict};
use mc_ast::{
    Expr, ExprKind, ExternalDecl, Function, Initializer, Item, Stmt, StmtKind, TranslationUnit,
    UnaryOp,
};
use mc_symx::World;
use std::collections::{HashMap, HashSet};

/// A [`World`] over one translation unit: callee bodies by definition,
/// constants from enum variants and integer-initialized globals — the same
/// view `mc-sim` builds for the interpreter, so the symbolic executor and
/// concrete replay agree on what a manifest constant means. A global that
/// is *assigned* (or address-taken) anywhere in the unit is not a constant
/// at all — substituting its initializer for reads after the write would
/// refute feasible paths — so only write-free globals register.
pub(crate) struct UnitWorld<'a> {
    unit: &'a TranslationUnit,
    constants: HashMap<&'a str, i64>,
}

/// Records the written-to name behind an assignment target or `&` operand:
/// a plain identifier, possibly under casts. Member/index/deref targets
/// cannot name a scalar `int` global, so they are ignored here.
fn mark_written(e: &Expr, out: &mut HashSet<String>) {
    match &e.kind {
        ExprKind::Ident(n) => {
            out.insert(n.clone());
        }
        ExprKind::Cast { expr, .. } => mark_written(expr, out),
        _ => {}
    }
}

/// Collects every identifier the expression writes (assignments, inc/dec)
/// or lets escape (`&x`, through which a later store may write).
fn scan_writes(e: &Expr, out: &mut HashSet<String>) {
    match &e.kind {
        ExprKind::Assign { lhs, .. } => mark_written(lhs, out),
        ExprKind::Unary {
            op: UnaryOp::PreInc | UnaryOp::PreDec | UnaryOp::AddrOf,
            operand,
        } => mark_written(operand, out),
        ExprKind::Postfix { operand, .. } => mark_written(operand, out),
        _ => {}
    }
    mc_symx::for_each_child(e, &mut |c| scan_writes(c, out));
}

fn scan_init(init: &Initializer, out: &mut HashSet<String>) {
    match init {
        Initializer::Expr(e) => scan_writes(e, out),
        Initializer::List(items) => items.iter().for_each(|i| scan_init(i, out)),
    }
}

fn scan_stmt(s: &Stmt, out: &mut HashSet<String>) {
    match &s.kind {
        StmtKind::Expr(e) => scan_writes(e, out),
        StmtKind::Decl(d) => {
            if let Some(init) = &d.init {
                scan_init(init, out);
            }
        }
        StmtKind::Block(body) => body.iter().for_each(|s| scan_stmt(s, out)),
        StmtKind::If { cond, then, els } => {
            scan_writes(cond, out);
            scan_stmt(then, out);
            if let Some(els) = els {
                scan_stmt(els, out);
            }
        }
        StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
            scan_writes(cond, out);
            scan_stmt(body, out);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(init) = init {
                scan_stmt(init, out);
            }
            if let Some(cond) = cond {
                scan_writes(cond, out);
            }
            if let Some(step) = step {
                scan_writes(step, out);
            }
            scan_stmt(body, out);
        }
        StmtKind::Switch { scrutinee, cases } => {
            scan_writes(scrutinee, out);
            for c in cases {
                c.body.iter().for_each(|s| scan_stmt(s, out));
            }
        }
        StmtKind::Return(Some(e)) => scan_writes(e, out),
        StmtKind::Label(_, inner) => scan_stmt(inner, out),
        StmtKind::Empty
        | StmtKind::Break
        | StmtKind::Continue
        | StmtKind::Return(None)
        | StmtKind::Goto(_) => {}
    }
}

/// The sorted set of identifiers assigned or address-taken anywhere in
/// the unit's function bodies — the exact write set [`UnitWorld`] uses to
/// disqualify globals from constant registration. The red/green engine
/// folds it into the unit environment hash: an edit that starts (or
/// stops) writing a global can change the refutation verdicts of *every*
/// function in the unit, not just the edited one.
pub(crate) fn written_globals(unit: &TranslationUnit) -> Vec<String> {
    let mut assigned: HashSet<String> = HashSet::new();
    for item in &unit.items {
        if let Item::Function(f) = item {
            f.body.iter().for_each(|s| scan_stmt(s, &mut assigned));
        }
    }
    let mut names: Vec<String> = assigned.into_iter().collect();
    names.sort_unstable();
    names
}

impl<'a> UnitWorld<'a> {
    pub(crate) fn new(unit: &'a TranslationUnit) -> UnitWorld<'a> {
        let mut assigned: HashSet<String> = HashSet::new();
        for item in &unit.items {
            if let Item::Function(f) = item {
                f.body.iter().for_each(|s| scan_stmt(s, &mut assigned));
            }
        }
        let mut constants = HashMap::new();
        for item in &unit.items {
            match item {
                Item::Decl(ExternalDecl::EnumDef { variants, .. }) => {
                    // C enum semantics: implicit values continue from the
                    // last explicit one.
                    let mut next = 0i64;
                    for (name, value) in variants {
                        let v = value.unwrap_or(next);
                        constants.insert(name.as_str(), v);
                        next = v + 1;
                    }
                }
                Item::Decl(ExternalDecl::Var(d)) => {
                    if let Some(Initializer::Expr(e)) = &d.init {
                        if let ExprKind::IntLit(v, _) = e.kind {
                            if !assigned.contains(d.name.as_str()) {
                                constants.insert(d.name.as_str(), v);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        UnitWorld { unit, constants }
    }
}

impl World for UnitWorld<'_> {
    fn function(&self, name: &str) -> Option<&Function> {
        self.unit.function(name)
    }

    fn constant(&self, name: &str) -> Option<i64> {
        self.constants.get(name).copied()
    }
}

/// Decides one report against the function its witness walks.
///
/// Reports with no witness, or reports about a different function (a
/// native checker may attribute a finding elsewhere), stay
/// [`Verdict::Unchecked`]. A refuted report keeps its text but drops to
/// confidence 0 — the path cannot execute, and renderers hide it by
/// default. A satisfiable report records the solver's replayable model so
/// concrete replay (`mc-sim`) can later promote it to
/// [`Verdict::Confirmed`].
pub(crate) fn decide(r: &mut Report, function: &Function, world: &UnitWorld<'_>) {
    if r.verdict != Verdict::Unchecked || r.steps.is_empty() || r.function != function.name {
        return;
    }
    match mc_symx::analyze_witness(function, &r.steps, world).verdict {
        mc_symx::Verdict::Refuted => {
            r.verdict = Verdict::Refuted;
            r.confidence = 0;
        }
        mc_symx::Verdict::Sat { model } => {
            r.verdict = Verdict::Sat;
            r.model = model;
        }
        mc_symx::Verdict::Unknown => {}
    }
}

/// Runs [`decide`] over program-pass reports, resolving each report's
/// function in the component's units by (file, name). Lane-quota traces
/// are not reconstructible (their steps are summary notes, not path
/// steps), so in practice these stay `Unchecked` — the walk is cheap and
/// keeps the policy uniform across report classes.
pub(crate) fn decide_program_reports(units: &[&TranslationUnit], reports: &mut [Report]) {
    for r in reports.iter_mut() {
        if r.steps.is_empty() {
            continue;
        }
        let Some(unit) = units.iter().find(|u| u.file == r.file) else {
            continue;
        };
        let Some(function) = unit.function(&r.function) else {
            continue;
        };
        let world = UnitWorld::new(unit);
        decide(r, function, &world);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_ast::parse_translation_unit;

    #[test]
    fn unit_world_resolves_enum_and_const_globals() {
        let unit = parse_translation_unit(
            "enum Len { LEN_NODATA, LEN_WORD = 4, LEN_CACHELINE };\n\
             int G_LIMIT = 9;\n\
             void helper(void) { a(); }\n",
            "w.c",
        )
        .unwrap();
        let w = UnitWorld::new(&unit);
        assert_eq!(w.constant("LEN_NODATA"), Some(0));
        assert_eq!(w.constant("LEN_WORD"), Some(4));
        assert_eq!(w.constant("LEN_CACHELINE"), Some(5));
        assert_eq!(w.constant("G_LIMIT"), Some(9));
        assert_eq!(w.constant("UNKNOWN"), None);
        assert!(w.function("helper").is_some());
        assert!(w.function("missing").is_none());
    }

    #[test]
    fn assigned_globals_are_not_manifest_constants() {
        let unit = parse_translation_unit(
            "int G_SET = 9;\nint G_PTR = 7;\nint G_KEPT = 3;\n\
             void f(void) {\n  G_SET = 5;\n  use(&G_PTR);\n}\n",
            "w.c",
        )
        .unwrap();
        let w = UnitWorld::new(&unit);
        // Assigned or address-taken: the initializer is not the value at
        // every read, so it must not register as a constant.
        assert_eq!(w.constant("G_SET"), None);
        assert_eq!(w.constant("G_PTR"), None);
        assert_eq!(w.constant("G_KEPT"), Some(3));
    }

    #[test]
    fn writes_to_shouting_globals_do_not_refute() {
        use mc_cfg::{Cfg, PathStep, Terminator};
        // `G_LIMIT = 5; if (G_LIMIT == 5)` is concretely feasible; with
        // the initializer registered as a manifest constant the guard
        // would read 9 and the path would be unsoundly refuted.
        let unit = parse_translation_unit(
            "int G_LIMIT = 9;\nvoid f(void) {\n  G_LIMIT = 5;\n  if (G_LIMIT == 5) {\n    G_LIMIT = 0;\n  }\n}\n",
            "w.c",
        )
        .unwrap();
        let w = UnitWorld::new(&unit);
        let f = unit.function("f").unwrap();
        // Build engine-faithful steps straight off the CFG: the entry
        // statement, the taken branch, the then-block statement.
        let cfg = Cfg::build(f);
        let entry = &cfg.blocks[cfg.entry.0];
        let Terminator::Branch { cond, then_to, .. } = &entry.term else {
            panic!("expected branch terminator, got {:?}", entry.term);
        };
        let steps = vec![
            PathStep::new(entry.nodes[0].stmt.span, "statement"),
            PathStep::new(cond.span, "branch taken"),
            PathStep::new(cfg.blocks[then_to.0].nodes[0].stmt.span, "statement"),
        ];
        let a = mc_symx::analyze_witness(f, &steps, &w);
        assert!(
            !matches!(a.verdict, mc_symx::Verdict::Refuted),
            "feasible write-then-test path was refuted (stats: {:?})",
            a.stats
        );
    }
}
