//! The symbolic refutation pass: every report's witness path is replayed
//! through the `mc-symx` slice + SMT-lite executor, and the decision lands
//! on the report as a [`Verdict`].
//!
//! The pass runs inside the per-function check (and once more over
//! program-pass reports), so the incremental engine caches *decided*
//! reports: warm and cold runs carry byte-identical verdicts. Soundness
//! policy is inherited from `mc-symx` — only a proven-UNSAT path condition
//! refutes; anything the executor cannot decide leaves the report
//! [`Verdict::Unchecked`].

use crate::report::{Report, Verdict};
use mc_ast::{ExprKind, ExternalDecl, Function, Initializer, Item, TranslationUnit};
use mc_symx::World;
use std::collections::HashMap;

/// A [`World`] over one translation unit: callee bodies by definition,
/// constants from enum variants and integer-initialized globals — the same
/// view `mc-sim` builds for the interpreter, so the symbolic executor and
/// concrete replay agree on what a manifest constant means.
pub(crate) struct UnitWorld<'a> {
    unit: &'a TranslationUnit,
    constants: HashMap<&'a str, i64>,
}

impl<'a> UnitWorld<'a> {
    pub(crate) fn new(unit: &'a TranslationUnit) -> UnitWorld<'a> {
        let mut constants = HashMap::new();
        for item in &unit.items {
            match item {
                Item::Decl(ExternalDecl::EnumDef { variants, .. }) => {
                    // C enum semantics: implicit values continue from the
                    // last explicit one.
                    let mut next = 0i64;
                    for (name, value) in variants {
                        let v = value.unwrap_or(next);
                        constants.insert(name.as_str(), v);
                        next = v + 1;
                    }
                }
                Item::Decl(ExternalDecl::Var(d)) => {
                    if let Some(Initializer::Expr(e)) = &d.init {
                        if let ExprKind::IntLit(v, _) = e.kind {
                            constants.insert(d.name.as_str(), v);
                        }
                    }
                }
                _ => {}
            }
        }
        UnitWorld { unit, constants }
    }
}

impl World for UnitWorld<'_> {
    fn function(&self, name: &str) -> Option<&Function> {
        self.unit.function(name)
    }

    fn constant(&self, name: &str) -> Option<i64> {
        self.constants.get(name).copied()
    }
}

/// Decides one report against the function its witness walks.
///
/// Reports with no witness, or reports about a different function (a
/// native checker may attribute a finding elsewhere), stay
/// [`Verdict::Unchecked`]. A refuted report keeps its text but drops to
/// confidence 0 — the path cannot execute, and renderers hide it by
/// default. A satisfiable report records the solver's replayable model so
/// concrete replay (`mc-sim`) can later promote it to
/// [`Verdict::Confirmed`].
pub(crate) fn decide(r: &mut Report, function: &Function, world: &UnitWorld<'_>) {
    if r.verdict != Verdict::Unchecked || r.steps.is_empty() || r.function != function.name {
        return;
    }
    match mc_symx::analyze_witness(function, &r.steps, world).verdict {
        mc_symx::Verdict::Refuted => {
            r.verdict = Verdict::Refuted;
            r.confidence = 0;
        }
        mc_symx::Verdict::Sat { model } => {
            r.verdict = Verdict::Sat;
            r.model = model;
        }
        mc_symx::Verdict::Unknown => {}
    }
}

/// Runs [`decide`] over program-pass reports, resolving each report's
/// function in the component's units by (file, name). Lane-quota traces
/// are not reconstructible (their steps are summary notes, not path
/// steps), so in practice these stay `Unchecked` — the walk is cheap and
/// keeps the policy uniform across report classes.
pub(crate) fn decide_program_reports(units: &[&TranslationUnit], reports: &mut [Report]) {
    for r in reports.iter_mut() {
        if r.steps.is_empty() {
            continue;
        }
        let Some(unit) = units.iter().find(|u| u.file == r.file) else {
            continue;
        };
        let Some(function) = unit.function(&r.function) else {
            continue;
        };
        let world = UnitWorld::new(unit);
        decide(r, function, &world);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_ast::parse_translation_unit;

    #[test]
    fn unit_world_resolves_enum_and_const_globals() {
        let unit = parse_translation_unit(
            "enum Len { LEN_NODATA, LEN_WORD = 4, LEN_CACHELINE };\n\
             int G_LIMIT = 9;\n\
             void helper(void) { a(); }\n",
            "w.c",
        )
        .unwrap();
        let w = UnitWorld::new(&unit);
        assert_eq!(w.constant("LEN_NODATA"), Some(0));
        assert_eq!(w.constant("LEN_WORD"), Some(4));
        assert_eq!(w.constant("LEN_CACHELINE"), Some(5));
        assert_eq!(w.constant("G_LIMIT"), Some(9));
        assert_eq!(w.constant("UNKNOWN"), None);
        assert!(w.function("helper").is_some());
        assert!(w.function("missing").is_none());
    }
}
