//! Work-stealing scheduler for the driver's fan-out primitive.
//!
//! The driver distributes per-item work (file parses, `(unit, function)`
//! checks, summary waves, program-pass reruns) over a pool of scoped
//! threads. Historically every worker pulled the next index from one
//! shared `fetch_add` counter; that is still available as
//! [`SchedMode::Fixed`], but the default is [`SchedMode::Stealing`]: each
//! worker owns a bounded Chase-Lev deque pre-filled with a contiguous
//! block of task indices, pops locally from the bottom, and steals from
//! the top of a victim's deque when its own runs dry. Because all tasks
//! are known up front the deques never grow, which keeps the
//! implementation in safe Rust — the buffers are plain `AtomicUsize`
//! slots written once at construction, so the only synchronization that
//! matters is the `top` counter's compare-exchange (the linearization
//! point between a thief and the owner taking the last item).
//!
//! Scheduling never affects output: results land in per-index slots and
//! are merged in index order regardless of which worker ran what.

use std::sync::atomic::{AtomicIsize, Ordering};
use std::time::Instant;

/// How the driver's worker pool hands out task indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// One shared atomic counter; every worker `fetch_add`s the next index.
    Fixed,
    /// Per-worker Chase-Lev deques with stealing (the default).
    #[default]
    Stealing,
}

impl SchedMode {
    /// Stable name used in benchmark output.
    pub fn as_str(self) -> &'static str {
        match self {
            SchedMode::Fixed => "fixed",
            SchedMode::Stealing => "stealing",
        }
    }
}

/// Counters accumulated across every pool fan-out of a driver.
///
/// Retrieved (and reset) with `Driver::take_sched_stats`; the bench
/// harness emits them as the `scheduler` section of `BENCH_driver.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Number of pool fan-outs (one per `pool_map` call that ran work).
    pub pools: u64,
    /// Total task indices executed.
    pub tasks: u64,
    /// Tasks a worker took from another worker's deque.
    pub steals: u64,
    /// Individual steal probes, successful or not.
    pub steal_attempts: u64,
    /// Nanoseconds workers spent sweeping for work without running any.
    pub idle_ns: u64,
    /// Tasks executed per worker slot, summed across fan-outs.
    pub tasks_per_worker: Vec<u64>,
}

impl SchedStats {
    /// Folds another accumulator into this one (summing per-worker
    /// slots), so a harness can aggregate stats across several drivers.
    pub fn merge(&mut self, other: &SchedStats) {
        self.pools += other.pools;
        self.tasks += other.tasks;
        self.steals += other.steals;
        self.steal_attempts += other.steal_attempts;
        self.idle_ns += other.idle_ns;
        if self.tasks_per_worker.len() < other.tasks_per_worker.len() {
            self.tasks_per_worker
                .resize(other.tasks_per_worker.len(), 0);
        }
        for (w, v) in other.tasks_per_worker.iter().enumerate() {
            self.tasks_per_worker[w] += v;
        }
    }

    /// Folds one fan-out's per-worker logs into the running totals.
    pub(crate) fn absorb(&mut self, logs: &[WorkerLog]) {
        self.pools += 1;
        if self.tasks_per_worker.len() < logs.len() {
            self.tasks_per_worker.resize(logs.len(), 0);
        }
        for (w, log) in logs.iter().enumerate() {
            self.tasks += log.executed;
            self.steals += log.steals;
            self.steal_attempts += log.attempts;
            self.idle_ns += log.idle_ns;
            self.tasks_per_worker[w] += log.executed;
        }
    }
}

/// One worker's view of a single fan-out.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WorkerLog {
    pub(crate) executed: u64,
    pub(crate) steals: u64,
    pub(crate) attempts: u64,
    pub(crate) idle_ns: u64,
}

/// Outcome of a steal probe.
enum Steal {
    /// Took this task index.
    Taken(usize),
    /// The victim's deque was empty.
    Empty,
    /// Lost a race on `top`; the caller may probe again.
    Retry,
}

/// A bounded single-owner, multi-thief deque of task indices.
///
/// The buffer is filled once at construction and never grows, so slot
/// contents are immutable while threads run; `top`/`bottom` are the only
/// mutable state. `top` is monotonically increasing, which rules out ABA
/// on the compare-exchange.
struct Deque {
    buf: Vec<usize>,
    top: AtomicIsize,
    bottom: AtomicIsize,
}

impl Deque {
    fn new(items: Vec<usize>) -> Deque {
        let len = items.len() as isize;
        Deque {
            buf: items,
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(len),
        }
    }

    /// Owner-side pop from the bottom. Only the owning worker calls this.
    fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        if t > b {
            // Already empty; restore bottom for any concurrent thief.
            self.bottom.store(b + 1, Ordering::SeqCst);
            return None;
        }
        let item = self.buf[b as usize];
        if t == b {
            // Last item: race the thieves on `top`.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok();
            self.bottom.store(b + 1, Ordering::SeqCst);
            return won.then_some(item);
        }
        Some(item)
    }

    /// Thief-side steal from the top.
    fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::SeqCst);
        if t >= b {
            return Steal::Empty;
        }
        let item = self.buf[t as usize];
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            Steal::Taken(item)
        } else {
            Steal::Retry
        }
    }
}

/// Runs `exec` over every index in `0..n` using `workers` threads with
/// work stealing, returning per-worker logs. `exec` is called exactly once
/// per index; no ordering is guaranteed (callers merge by index slot).
///
/// Task indices are dealt out in contiguous blocks (worker `w` owns block
/// `w`), matching the locality of the old fixed partitioning; owners
/// drain their block in ascending order and thieves take from the high
/// end of a victim's remaining range.
pub(crate) fn run_stealing<E>(n: usize, workers: usize, exec: E) -> Vec<WorkerLog>
where
    E: Fn(usize) + Sync,
{
    let deques: Vec<Deque> = (0..workers)
        .map(|w| {
            let lo = w * n / workers;
            let hi = (w + 1) * n / workers;
            // Push in reverse so the owner pops ascending indices.
            Deque::new((lo..hi).rev().collect())
        })
        .collect();
    let logs: Vec<std::sync::OnceLock<WorkerLog>> =
        (0..workers).map(|_| std::sync::OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for (w, slot) in logs.iter().enumerate() {
            let deques = &deques;
            let exec = &exec;
            scope.spawn(move || {
                let mut log = WorkerLog::default();
                let me = &deques[w];
                loop {
                    if let Some(i) = me.pop() {
                        exec(i);
                        log.executed += 1;
                        continue;
                    }
                    // Own deque dry: sweep the other workers for a task.
                    let sweep = Instant::now();
                    let mut stolen = None;
                    'sweep: for k in 1..deques.len() {
                        let victim = &deques[(w + k) % deques.len()];
                        loop {
                            log.attempts += 1;
                            match victim.steal() {
                                Steal::Taken(i) => {
                                    stolen = Some(i);
                                    break 'sweep;
                                }
                                Steal::Empty => break,
                                Steal::Retry => {}
                            }
                        }
                    }
                    log.idle_ns += sweep.elapsed().as_nanos() as u64;
                    match stolen {
                        Some(i) => {
                            exec(i);
                            log.executed += 1;
                            log.steals += 1;
                        }
                        // Every deque is empty and tasks are never re-queued,
                        // so there is nothing left to do.
                        None => break,
                    }
                }
                let _ = slot.set(log);
            });
        }
    });
    logs.into_iter()
        .map(|s| s.into_inner().unwrap_or_default())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn every_index_runs_exactly_once() {
        for &(n, workers) in &[(0usize, 4usize), (1, 4), (7, 2), (64, 4), (1000, 8)] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let logs = run_stealing(n, workers.max(1), |i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "n={n} workers={workers}: some index ran 0 or 2+ times"
            );
            let total: u64 = logs.iter().map(|l| l.executed).sum();
            assert_eq!(total, n as u64);
        }
    }

    #[test]
    fn imbalanced_load_steals() {
        // Worker 0's block is all the slow tasks; with stealing the other
        // workers should take some of them. Use a spin of meaningful but
        // bounded work so the test stays fast.
        let n = 64;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let logs = run_stealing(n, 4, |i| {
            if i < 16 {
                // Slow block owned by worker 0.
                let mut acc = 0u64;
                for k in 0..200_000u64 {
                    acc = acc.wrapping_mul(31).wrapping_add(k);
                }
                assert!(acc != 1); // keep the loop alive
            }
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        let steals: u64 = logs.iter().map(|l| l.steals).sum();
        assert!(steals > 0, "expected at least one steal under imbalance");
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut stats = SchedStats::default();
        stats.absorb(&[
            WorkerLog {
                executed: 3,
                steals: 1,
                attempts: 2,
                idle_ns: 10,
            },
            WorkerLog {
                executed: 5,
                steals: 0,
                attempts: 4,
                idle_ns: 20,
            },
        ]);
        stats.absorb(&[WorkerLog {
            executed: 2,
            steals: 2,
            attempts: 2,
            idle_ns: 5,
        }]);
        assert_eq!(stats.pools, 2);
        assert_eq!(stats.tasks, 10);
        assert_eq!(stats.steals, 3);
        assert_eq!(stats.steal_attempts, 8);
        assert_eq!(stats.idle_ns, 35);
        assert_eq!(stats.tasks_per_worker, vec![5, 5]);
    }
}
