//! The function-summary engine: computes one [`FnSummary`] per definition,
//! bottom-up over the call graph, and serves them to traversals and
//! program passes.
//!
//! This generalizes the lane checker's old bespoke emit-and-link pass (the
//! paper's §7 global framework) into infrastructure every checker shares:
//!
//! * the *emit* half is [`Checker::summarize_function`] plus the metal
//!   transfer computation ([`mc_metal::compute_transfers`]) — each checker
//!   contributes what it knows about one function to that function's
//!   summary;
//! * the *link* half is the bottom-up order: callees are summarized before
//!   their callers (Tarjan SCCs of the function-level call graph, visited
//!   in reverse topological order), so a caller's summary can fold its
//!   callees' summaries in. Members of one SCC see each other as
//!   [`Resolved::Recursive`] and fall under the §7 fixed-point rule:
//!   count-free cycles are ignored, cycles with counts warn.
//!
//! The store is consulted in two ways: whole-program passes read summaries
//! directly (the lane checker's quota check), and — under
//! [`Driver::interproc`] — local traversals resolve call sites through it
//! via [`mc_cfg::SummaryLookup`], applying callee state transfers instead
//! of stepping over calls blindly.

use crate::driver::{CheckedUnit, Driver, FunctionContext};
use mc_ast::Function;
use mc_cfg::{
    collect_calls, collect_clobbers, tarjan_sccs, Cfg, FnSummary, Resolved, SummaryLookup,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Counters from one summary-engine run, reported by `mc-bench`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SummaryStats {
    /// Number of function summaries computed.
    pub computed: usize,
    /// Number of call *sites* (with multiplicity) whose callee has a
    /// summary in the store.
    pub call_sites_resolved: usize,
}

/// A store of function summaries, keyed by function name.
///
/// Built by [`Summaries::compute`] (or reassembled from cached records by
/// the incremental engine) and handed to checkers through
/// [`FunctionContext::summaries`] / [`crate::ProgramContext::summaries`].
#[derive(Debug, Clone, Default)]
pub struct Summaries {
    /// Name → summary. A `BTreeMap` so iteration (and thus serialization)
    /// is deterministic.
    map: BTreeMap<String, FnSummary>,
    /// Every function name *defined* in the analyzed program, whether or
    /// not its summary is present yet — this is what distinguishes
    /// [`Resolved::Recursive`] from [`Resolved::Unknown`].
    defined: BTreeSet<String>,
    stats: SummaryStats,
}

impl SummaryLookup for Summaries {
    fn lookup(&self, callee: &str) -> Option<&FnSummary> {
        self.map.get(callee)
    }
}

impl Summaries {
    /// Creates an empty store.
    pub fn empty() -> Summaries {
        Summaries::default()
    }

    /// The summary of `name`, if present.
    pub fn get(&self, name: &str) -> Option<&FnSummary> {
        self.map.get(name)
    }

    /// Resolves a callee name the way the summary engine does: summary if
    /// present, [`Resolved::Recursive`] if the name is defined but not yet
    /// summarized (same call-graph cycle), [`Resolved::Unknown`] otherwise.
    pub fn resolve(&self, callee: &str) -> Resolved<'_> {
        match self.map.get(callee) {
            Some(s) => Resolved::Summary(s),
            None if self.defined.contains(callee) => Resolved::Recursive,
            None => Resolved::Unknown,
        }
    }

    /// Inserts a summary (used when reassembling a store from cache).
    pub fn insert(&mut self, summary: FnSummary) {
        self.defined.insert(summary.function.clone());
        self.map.insert(summary.function.clone(), summary);
        self.stats.computed = self.map.len();
    }

    /// Iterates summaries in function-name order.
    pub fn iter(&self) -> impl Iterator<Item = &FnSummary> {
        self.map.values()
    }

    /// Number of summaries in the store.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the store holds no summaries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters from the run that built this store.
    pub fn stats(&self) -> SummaryStats {
        self.stats
    }

    /// Computes a summary for every function definition in `units`,
    /// bottom-up over the call graph.
    ///
    /// `with_transfers` enables the state-transfer half (metal machines and
    /// [`Checker::summarize_function`] transfer computation); counter
    /// contributions are computed regardless, since the lane checker's
    /// program pass needs them even when call-site resolution is off.
    /// Duplicate definitions resolve last-wins, matching the old global
    /// linker.
    pub fn compute(driver: &Driver, units: &[&CheckedUnit], with_transfers: bool) -> Summaries {
        let (defs, adj) = collect_defs(units);

        let mut store = Summaries::empty();
        for def in &defs {
            store.defined.insert(def.function.name.clone());
        }

        // Group SCCs into topological *waves*: an SCC's level is one more
        // than the deepest level among its out-of-SCC callees, so no call
        // edge ever connects two SCCs of the same level. Every definition
        // in a wave can then be summarized concurrently over the worker
        // pool — each sees exactly the store state a sequential bottom-up
        // visit would have shown it (all lower waves published, its own
        // SCC unpublished, so mutually-recursive functions still resolve
        // as `Recursive`). Wave results are keyed by name into the
        // `BTreeMap`, so store contents are independent of completion
        // order.
        let sccs: Vec<Vec<usize>> = tarjan_sccs(&adj).into_iter().collect();
        let mut scc_of = vec![0usize; defs.len()];
        for (si, scc) in sccs.iter().enumerate() {
            for &m in scc {
                scc_of[m] = si;
            }
        }
        // `tarjan_sccs` yields callees before callers, so every callee
        // SCC's level is final when its caller's is computed.
        let mut level = vec![0usize; sccs.len()];
        for (si, scc) in sccs.iter().enumerate() {
            let mut lv = 0;
            for &m in scc {
                for &c in &adj[m] {
                    if scc_of[c] != si {
                        lv = lv.max(level[scc_of[c]] + 1);
                    }
                }
            }
            level[si] = lv;
        }
        let max_level = level.iter().copied().max().unwrap_or(0);
        let mut waves: Vec<Vec<(usize, bool)>> = vec![Vec::new(); max_level + 1];
        for (si, scc) in sccs.iter().enumerate() {
            // A lone node with a self-loop is still a cycle.
            let cyclic = scc.len() > 1 || adj[scc[0]].contains(&scc[0]);
            // Sort members by name so wave item order never depends on
            // unit order within a cycle.
            let mut members = scc.clone();
            members.sort_by(|&a, &b| defs[a].function.name.cmp(&defs[b].function.name));
            for &m in &members {
                waves[level[si]].push((m, cyclic));
            }
        }
        for wave in &waves {
            let batch = driver.pool_map(wave.len(), |i| {
                let (m, cyclic) = wave[i];
                summarize_def(driver, &store, &defs[m], cyclic, with_transfers)
            });
            for summary in batch {
                store.map.insert(summary.function.clone(), summary);
            }
        }

        // Stats: every summary counts as computed; a call site counts as
        // resolved when its callee ended up in the store.
        store.stats.computed = store.map.len();
        store.stats.call_sites_resolved = defs
            .iter()
            .map(|d| count_resolved_calls(d.function, &store))
            .sum();
        store
    }

    /// [`Summaries::compute`] with a per-function memo: a function whose
    /// *summary inputs* — its own body, its file, the whole checker suite,
    /// and (recursively) the summaries of every callee it can resolve —
    /// are unchanged reuses its previous summary instead of re-running
    /// the emit half.
    ///
    /// Input keys are built bottom-up over the same SCC order as
    /// [`Summaries::compute`]: a member's key folds the suite key, the
    /// cyclic flag, every SCC member's `(name, file, body fingerprint)`,
    /// and each out-of-SCC callee's *input key* (undefined callees fold as
    /// name-only). Equal keys therefore guarantee the whole bottom-up
    /// computation would replay identically, so the store this returns is
    /// byte-identical to a fresh [`Summaries::compute`] — only cheaper
    /// after an edit, when untouched functions (the vast majority) reuse.
    ///
    /// `stats.call_sites_resolved` is left at zero, matching a store
    /// reassembled from cache records.
    pub fn compute_incremental(
        driver: &Driver,
        units: &[&CheckedUnit],
        with_transfers: bool,
        memo: &mut HashMap<u64, FnSummary>,
    ) -> Summaries {
        let (defs, adj) = collect_defs(units);

        let mut store = Summaries::empty();
        for def in &defs {
            store.defined.insert(def.function.name.clone());
        }

        let suite = driver.suite_key();
        let mut key_of: Vec<u64> = vec![0; defs.len()];
        let mut reused = 0usize;
        for scc in tarjan_sccs(&adj) {
            let cyclic = scc.len() > 1 || adj[scc[0]].contains(&scc[0]);
            let in_scc: std::collections::HashSet<usize> = scc.iter().copied().collect();
            let mut members = scc;
            members.sort_by(|&a, &b| defs[a].function.name.cmp(&defs[b].function.name));
            for &m in &members {
                let def = &defs[m];
                let mut h = mc_ast::Fnv1a::new();
                h.write_u64(suite)
                    .write_u64(u64::from(with_transfers))
                    .write_u64(u64::from(cyclic));
                for &s in &members {
                    h.write_str(&defs[s].function.name)
                        .write_str(&defs[s].unit.unit.file)
                        .write_u64(defs[s].unit.fn_fingerprints()[defs[s].fidx].body);
                }
                h.write_str(&def.function.name);
                for callee in &def.unit.fn_call_names()[def.fidx] {
                    h.write_str(callee);
                    match def.callee_index(callee) {
                        Some(c) if !in_scc.contains(&c) => {
                            h.write_u64(1).write_u64(key_of[c]);
                        }
                        // Same-SCC callees are covered by the member fold
                        // above; undefined callees resolve `Unknown` and
                        // fold as name-only.
                        _ => {
                            h.write_u64(0);
                        }
                    }
                }
                key_of[m] = h.finish();
            }
            let all_cached = members.iter().all(|&m| memo.contains_key(&key_of[m]));
            if all_cached {
                reused += members.len();
                for &m in &members {
                    let summary = memo[&key_of[m]].clone();
                    store.map.insert(summary.function.clone(), summary);
                }
                continue;
            }
            let batch: Vec<FnSummary> = members
                .iter()
                .map(|&m| summarize_def(driver, &store, &defs[m], cyclic, with_transfers))
                .collect();
            for (&m, summary) in members.iter().zip(batch) {
                memo.insert(key_of[m], summary.clone());
                store.map.insert(summary.function.clone(), summary);
            }
        }

        store.stats.computed = store.map.len() - reused;
        store
    }
}

/// One function definition inside a component, with enough context to
/// resolve its callees back to definition indices.
struct Def<'a> {
    unit: &'a CheckedUnit,
    function: &'a Function,
    cfg: &'a Cfg,
    /// Index of the function within its unit, in definition order.
    fidx: usize,
    /// Shared name → definition-index map of the whole component.
    index_of: std::sync::Arc<HashMap<String, usize>>,
}

impl Def<'_> {
    fn callee_index(&self, callee: &str) -> Option<usize> {
        self.index_of.get(callee).copied()
    }
}

/// Collects definitions (node per unique name, last definition wins, node
/// indices in first-occurrence order for determinism) and the
/// function-level call graph over defined names.
fn collect_defs<'a>(units: &[&'a CheckedUnit]) -> (Vec<Def<'a>>, Vec<Vec<usize>>) {
    let mut defs: Vec<Def<'a>> = Vec::new();
    let mut index_of: HashMap<String, usize> = HashMap::new();
    for unit in units {
        for (fidx, (function, cfg)) in unit.functions().enumerate() {
            let def = Def {
                unit,
                function,
                cfg,
                fidx,
                index_of: std::sync::Arc::new(HashMap::new()),
            };
            match index_of.entry(function.name.clone()) {
                std::collections::hash_map::Entry::Occupied(e) => defs[*e.get()] = def,
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(defs.len());
                    defs.push(def);
                }
            }
        }
    }
    let index_of = std::sync::Arc::new(index_of);
    for def in &mut defs {
        def.index_of = index_of.clone();
    }

    let adj: Vec<Vec<usize>> = defs
        .iter()
        .map(|d| {
            d.unit.fn_call_names()[d.fidx]
                .iter()
                .filter_map(|callee| index_of.get(callee.as_str()).copied())
                .collect()
        })
        .collect();
    (defs, adj)
}

/// Summarizes one definition against the store built so far: the metal
/// transfer computation (when `with_transfers` and acyclic) plus every
/// native checker's [`Checker::summarize_function`].
///
/// [`Checker::summarize_function`]: crate::Checker::summarize_function
fn summarize_def(
    driver: &Driver,
    store: &Summaries,
    def: &Def<'_>,
    cyclic: bool,
    with_transfers: bool,
) -> FnSummary {
    let traversal = driver.traversal();
    let mut summary = FnSummary {
        function: def.function.name.clone(),
        file: def.unit.unit.file.clone(),
        calls: collect_calls(def.function),
        clobbers: collect_clobbers(def.function),
        ..FnSummary::default()
    };
    let transfers = with_transfers && !cyclic;
    if transfers {
        // Transfers run under the same engine as the local passes, so a
        // differential run exercises the compiled summary path too (both
        // engines compute identical transfer maps).
        match driver.metal_engine() {
            mc_metal::MetalEngine::Compiled => {
                for cp in driver.compiled_programs() {
                    let t =
                        mc_metal::compute_transfers_compiled(cp, def.cfg, traversal, Some(store));
                    if !t.is_empty() {
                        summary.transfers.insert(cp.name().to_string(), t);
                    }
                }
            }
            mc_metal::MetalEngine::Interp => {
                for prog in driver.metal_programs() {
                    let t = mc_metal::compute_transfers(prog, def.cfg, traversal, Some(store));
                    if !t.is_empty() {
                        summary.transfers.insert(prog.name.clone(), t);
                    }
                }
            }
        }
    }
    let ctx = FunctionContext {
        file: &def.unit.unit.file,
        unit: &def.unit.unit,
        function: def.function,
        cfg: def.cfg,
        traversal,
        summaries: Some(store),
    };
    for checker in driver.native_checkers() {
        checker.summarize_function(&ctx, &mut summary, transfers);
    }
    summary
}

/// Counts call expressions in `func` (with multiplicity) whose callee has a
/// summary in `store`.
fn count_resolved_calls(func: &Function, store: &Summaries) -> usize {
    struct V<'a> {
        store: &'a Summaries,
        n: usize,
    }
    impl mc_ast::Visitor for V<'_> {
        fn visit_expr(&mut self, e: &mc_ast::Expr) {
            if let Some((name, _)) = e.as_call() {
                if self.store.get(name).is_some() {
                    self.n += 1;
                }
            }
        }
    }
    let mut v = V { store, n: 0 };
    mc_ast::walk_function(&mut v, func);
    v.n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{CheckSink, Checker};
    use mc_ast::parse_translation_unit;

    fn units(srcs: &[(&str, &str)]) -> Vec<CheckedUnit> {
        srcs.iter()
            .map(|(src, file)| CheckedUnit::new(parse_translation_unit(src, file).unwrap()))
            .collect()
    }

    #[test]
    fn bottom_up_order_sees_callee_summaries() {
        /// Counts `PING()` calls transitively via summaries.
        struct Ping;
        impl Checker for Ping {
            fn name(&self) -> &str {
                "ping"
            }
            fn check_function(&self, _: &FunctionContext<'_>, _: &mut CheckSink) {}
            fn needs_summaries(&self) -> bool {
                true
            }
            fn summarize_function(
                &self,
                ctx: &FunctionContext<'_>,
                summary: &mut FnSummary,
                _: bool,
            ) {
                let store = ctx.summaries.expect("engine always passes the store");
                let counts = mc_cfg::summarize_counts(
                    ctx.file,
                    ctx.cfg,
                    &mut |e| {
                        e.as_call()
                            .filter(|(name, _)| *name == "PING")
                            .map(|_| ("ping".to_string(), 1))
                    },
                    &|callee| store.resolve(callee),
                );
                summary.counters = counts.counters;
            }
        }
        let mut d = Driver::new();
        d.add_checker(Box::new(Ping));
        let us = units(&[
            ("void leaf(void) { PING(); }", "leaf.c"),
            ("void mid(void) { leaf(); leaf(); }", "mid.c"),
            ("void top(void) { mid(); PING(); }", "top.c"),
        ]);
        let refs: Vec<&CheckedUnit> = us.iter().collect();
        let store = Summaries::compute(&d, &refs, false);
        assert_eq!(store.get("leaf").unwrap().counters["ping"], 1);
        assert_eq!(store.get("mid").unwrap().counters["ping"], 2);
        assert_eq!(store.get("top").unwrap().counters["ping"], 3);
        assert_eq!(store.stats().computed, 3);
        // mid→leaf twice, top→mid once: three resolved call sites.
        assert_eq!(store.stats().call_sites_resolved, 3);
    }

    #[test]
    fn duplicate_definitions_resolve_last_wins() {
        let d = Driver::new();
        let us = units(&[
            ("void f(void) { a(); }", "first.c"),
            ("void f(void) { b(); }", "second.c"),
        ]);
        let refs: Vec<&CheckedUnit> = us.iter().collect();
        let store = Summaries::compute(&d, &refs, false);
        let f = store.get("f").unwrap();
        assert_eq!(f.file, "second.c");
        assert_eq!(f.calls, ["b"]);
    }

    #[test]
    fn resolve_distinguishes_recursive_from_unknown() {
        let d = Driver::new();
        let us = units(&[("void f(void) { f(); ext(); }", "t.c")]);
        let refs: Vec<&CheckedUnit> = us.iter().collect();
        let store = Summaries::compute(&d, &refs, false);
        assert!(matches!(store.resolve("f"), Resolved::Summary(_)));
        assert!(matches!(store.resolve("ext"), Resolved::Unknown));
        let mut partial = Summaries::empty();
        partial.defined.insert("f".to_string());
        assert!(matches!(partial.resolve("f"), Resolved::Recursive));
    }

    #[test]
    fn clobbers_and_calls_recorded_without_any_checker() {
        let d = Driver::new();
        let us = units(&[("void f(int p) { gState = 1; p = 2; helper(); }", "t.c")]);
        let refs: Vec<&CheckedUnit> = us.iter().collect();
        let store = Summaries::compute(&d, &refs, false);
        let f = store.get("f").unwrap();
        assert_eq!(f.clobbers, ["gState"]);
        assert_eq!(f.calls, ["helper"]);
    }

    #[test]
    fn metal_transfers_skipped_for_cycles_and_without_flag() {
        const SM: &str = r#"
            sm toggle {
                decl { scalar } x;
                start: { FLIP(x); } ==> flipped;
                flipped: { FLIP(x); } ==> start;
            }
        "#;
        let mut d = Driver::new();
        d.add_metal_source(SM).unwrap();
        let us = units(&[
            ("void helper(void) { FLIP(a); }", "h.c"),
            ("void looper(void) { FLIP(a); looper(); }", "l.c"),
        ]);
        let refs: Vec<&CheckedUnit> = us.iter().collect();

        let off = Summaries::compute(&d, &refs, false);
        assert!(off.get("helper").unwrap().transfers.is_empty());

        let on = Summaries::compute(&d, &refs, true);
        let helper = on.get("helper").unwrap();
        let per_state = helper.transfers.get("toggle").expect("toggle transfers");
        assert_eq!(per_state["start"], ["flipped"]);
        assert_eq!(per_state["flipped"], ["start"]);
        // Self-recursive function: no fixed point attempted, stays opaque.
        assert!(on.get("looper").unwrap().transfers.is_empty());
    }
}
