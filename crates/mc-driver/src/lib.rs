//! # mc-driver
//!
//! The xg++ analog: an extensible analysis driver that parses protocol
//! sources, builds CFGs, applies every registered checker down every path
//! of every function, and collects [`Report`]s.
//!
//! Checkers come in two forms, mirroring the paper:
//!
//! * **metal programs** ([`mc_metal::MetalProgram`]) — added with
//!   [`Driver::add_metal_checker`]; the driver runs them via the
//!   path-sensitive engine.
//! * **native extensions** — Rust types implementing [`Checker`], for
//!   analyses that need tables, richer state, or the global framework
//!   (buffer management, lane quotas, execution restrictions).
//!
//! The [`summaries`] module generalizes xg++'s inter-procedural support:
//! every checker can *emit* what it knows about one function into that
//! function's [`mc_cfg::FnSummary`] (counters, state transfers, clobbered
//! facts), and the engine *links* by computing summaries bottom-up over
//! the call-graph SCCs with the paper's fixed-point cycle handling. The
//! lane/deadlock checker reads counter summaries in its program pass;
//! under [`Driver::interproc`] every path-sensitive checker resolves call
//! sites through the store.
//!
//! Checking is parallel: the driver parses files and checks functions
//! across a worker pool ([`Driver::jobs`]), tagging every work item with
//! its `(unit, function)` index and merging results in index order, so the
//! report vector is byte-identical at any worker count.
//!
//! # Example
//!
//! ```
//! use mc_driver::Driver;
//! use mc_metal::MetalProgram;
//!
//! let sm = MetalProgram::parse(r#"
//!     sm no_raw_read {
//!         decl { scalar } a, b;
//!         start: { MISCBUS_READ_DB(a, b); } ==> { err("raw read"); } ;
//!     }
//! "#)?;
//! let mut driver = Driver::new();
//! driver.add_metal_checker(sm)?;
//! let reports = driver.check_source(
//!     "void h(void) { MISCBUS_READ_DB(x, y); }", "h.c")?;
//! assert_eq!(reports.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
mod driver;
mod query;
mod refute;
mod report;
mod sched;
pub mod summaries;

pub use driver::{
    call_components, call_info, CallInfo, CheckSink, CheckedUnit, Checker, Driver, DriverError,
    Fact, FunctionContext, ProgramContext, CACHE_FORMAT_VERSION,
};
pub use mc_metal::MetalEngine;
pub use query::{CheckEngine, Invalidation, Query, RunStats};
pub use report::{Report, Severity, Verdict};
pub use sched::{SchedMode, SchedStats};
pub use summaries::{Summaries, SummaryStats};
