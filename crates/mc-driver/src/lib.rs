//! # mc-driver
//!
//! The xg++ analog: an extensible analysis driver that parses protocol
//! sources, builds CFGs, applies every registered checker down every path
//! of every function, and collects [`Report`]s.
//!
//! Checkers come in two forms, mirroring the paper:
//!
//! * **metal programs** ([`mc_metal::MetalProgram`]) — added with
//!   [`Driver::add_metal_checker`]; the driver runs them via the
//!   path-sensitive engine.
//! * **native extensions** — Rust types implementing [`Checker`], for
//!   analyses that need tables, richer state, or the global framework
//!   (buffer management, lane quotas, execution restrictions).
//!
//! The [`global`] module reproduces xg++'s inter-procedural support: local
//! passes *emit* annotated flow graphs (serializable to files, exactly as
//! xg++ wrote them to disk), a link step builds a whole-protocol call
//! graph, and a traversal with fixed-point cycle handling computes
//! inter-procedural summaries (used by the lane/deadlock checker).
//!
//! Checking is parallel: the driver parses files and checks functions
//! across a worker pool ([`Driver::jobs`]), tagging every work item with
//! its `(unit, function)` index and merging results in index order, so the
//! report vector is byte-identical at any worker count.
//!
//! # Example
//!
//! ```
//! use mc_driver::Driver;
//! use mc_metal::MetalProgram;
//!
//! let sm = MetalProgram::parse(r#"
//!     sm no_raw_read {
//!         decl { scalar } a, b;
//!         start: { MISCBUS_READ_DB(a, b); } ==> { err("raw read"); } ;
//!     }
//! "#)?;
//! let mut driver = Driver::new();
//! driver.add_metal_checker(sm);
//! let reports = driver.check_source(
//!     "void h(void) { MISCBUS_READ_DB(x, y); }", "h.c")?;
//! assert_eq!(reports.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
mod driver;
pub mod global;
mod query;
mod report;

pub use driver::{
    call_components, call_info, CallInfo, CheckSink, CheckedUnit, Checker, Driver, DriverError,
    Fact, FunctionContext, ProgramContext, CACHE_FORMAT_VERSION,
};
pub use query::{CheckEngine, Query, RunStats};
pub use report::{Report, Severity};
