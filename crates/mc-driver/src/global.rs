//! Inter-procedural ("global") analysis framework.
//!
//! xg++ did not integrate global analysis into the SM framework; instead it
//! let extensions *emit client-annotated flow graphs to files*, then *link*
//! them into a whole-protocol call graph and traverse it. This module
//! reproduces that design:
//!
//! 1. A local pass turns each function's CFG into an [`EmittedGraph`]:
//!    blocks with successor edges and client [`GraphEvent`]s (numeric
//!    `Count` annotations — e.g. "one send on lane 2" — plus `Call` events
//!    collected automatically from call expressions). Graphs serialize to
//!    JSON with [`EmittedGraph::to_json`], mirroring xg++'s emit-to-file.
//! 2. [`GlobalGraph::link`] joins the graphs by callee name.
//! 3. [`GlobalGraph::summarize`] computes, per function and per key, the
//!    maximum summed `Count` along any inter-procedural path, with the
//!    paper's fixed-point treatment of cycles: a cycle that contributes no
//!    counts is a fixed point and is safely ignored; a cycle *with* counts
//!    is reported to the caller (the lane checker turns these into
//!    potential-deadlock warnings).

use mc_ast::{Expr, ExprKind, Initializer, StmtKind};
use mc_cfg::{Cfg, Terminator};
use mc_json::{FromJson, Json, JsonError, ToJson};
use std::collections::{BTreeMap, HashMap, HashSet};

/// An event recorded in an emitted flow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphEvent {
    /// A client annotation adding `amount` to the per-path total of `key`.
    Count {
        /// Which quantity this event contributes to (e.g. `"lane1"`).
        key: String,
        /// Contribution (sends are `+1`).
        amount: i64,
        /// Source line, for back traces.
        line: u32,
    },
    /// A call to a named function (collected automatically).
    Call {
        /// Callee name.
        callee: String,
        /// Source line, for back traces.
        line: u32,
    },
}

impl ToJson for GraphEvent {
    fn to_json(&self) -> Json {
        // Externally tagged, matching serde's default enum representation.
        match self {
            GraphEvent::Count { key, amount, line } => mc_json::object(vec![(
                "Count",
                mc_json::object(vec![
                    ("key", key.to_json()),
                    ("amount", amount.to_json()),
                    ("line", line.to_json()),
                ]),
            )]),
            GraphEvent::Call { callee, line } => mc_json::object(vec![(
                "Call",
                mc_json::object(vec![("callee", callee.to_json()), ("line", line.to_json())]),
            )]),
        }
    }
}

impl FromJson for GraphEvent {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(body) = v.get("Count") {
            Ok(GraphEvent::Count {
                key: mc_json::field(body, "key")?,
                amount: mc_json::field(body, "amount")?,
                line: mc_json::field(body, "line")?,
            })
        } else if let Some(body) = v.get("Call") {
            Ok(GraphEvent::Call {
                callee: mc_json::field(body, "callee")?,
                line: mc_json::field(body, "line")?,
            })
        } else {
            Err(JsonError::expected("a `Count` or `Call` event object"))
        }
    }
}

/// One block of an emitted graph.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EmittedBlock {
    /// Successor block indices.
    pub succs: Vec<usize>,
    /// Events in execution order.
    pub events: Vec<GraphEvent>,
}

impl ToJson for EmittedBlock {
    fn to_json(&self) -> Json {
        mc_json::object(vec![
            ("succs", self.succs.to_json()),
            ("events", self.events.to_json()),
        ])
    }
}

impl FromJson for EmittedBlock {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(EmittedBlock {
            succs: mc_json::field(v, "succs")?,
            events: mc_json::field(v, "events")?,
        })
    }
}

/// A function's annotated flow graph, as emitted by a local pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmittedGraph {
    /// Function name (the link key).
    pub function: String,
    /// Defining file.
    pub file: String,
    /// Entry block index.
    pub entry: usize,
    /// Blocks.
    pub blocks: Vec<EmittedBlock>,
}

impl EmittedGraph {
    /// Builds an emitted graph from a CFG. `annotate` is the client hook:
    /// it is offered every expression in the function (in block order) and
    /// returns `Count` events to record. `Call` events are collected
    /// automatically from call expressions.
    pub fn from_cfg<F>(file: &str, cfg: &Cfg, mut annotate: F) -> EmittedGraph
    where
        F: FnMut(&Expr) -> Option<GraphEvent>,
    {
        let mut blocks = Vec::with_capacity(cfg.blocks.len());
        for (_, block) in cfg.iter() {
            let mut eb = EmittedBlock {
                succs: block.term.successors().into_iter().map(|b| b.0).collect(),
                events: Vec::new(),
            };
            let mut visit = |e: &Expr| {
                collect_events(e, &mut annotate, &mut eb.events);
            };
            for node in &block.nodes {
                match &node.stmt.kind {
                    StmtKind::Expr(e) => visit(e),
                    StmtKind::Decl(d) => {
                        if let Some(Initializer::Expr(e)) = &d.init {
                            visit(e);
                        }
                    }
                    _ => {}
                }
            }
            match &block.term {
                Terminator::Branch { cond, .. } => visit(cond),
                Terminator::Switch { scrutinee, .. } => visit(scrutinee),
                Terminator::Return { value: Some(v), .. } => visit(v),
                _ => {}
            }
            blocks.push(eb);
        }
        EmittedGraph {
            function: cfg.name.clone(),
            file: file.to_string(),
            entry: cfg.entry.0,
            blocks,
        }
    }

    /// Serializes to JSON (the on-disk format of the emit step).
    pub fn to_json(&self) -> String {
        mc_json::to_string(&mc_json::object(vec![
            ("function", self.function.to_json()),
            ("file", self.file.to_json()),
            ("entry", self.entry.to_json()),
            ("blocks", self.blocks.to_json()),
        ]))
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse error message on malformed input.
    pub fn from_json(s: &str) -> Result<EmittedGraph, String> {
        let v = Json::parse(s).map_err(|e| e.to_string())?;
        Ok(EmittedGraph {
            function: mc_json::field(&v, "function").map_err(|e| e.to_string())?,
            file: mc_json::field(&v, "file").map_err(|e| e.to_string())?,
            entry: mc_json::field(&v, "entry").map_err(|e| e.to_string())?,
            blocks: mc_json::field(&v, "blocks").map_err(|e| e.to_string())?,
        })
    }
}

/// Walks `e` post-order, recording client `Count` events and `Call` events.
fn collect_events<F>(e: &Expr, annotate: &mut F, out: &mut Vec<GraphEvent>)
where
    F: FnMut(&Expr) -> Option<GraphEvent>,
{
    match &e.kind {
        ExprKind::Call { callee, args } => {
            collect_events(callee, annotate, out);
            for a in args {
                collect_events(a, annotate, out);
            }
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            collect_events(lhs, annotate, out);
            collect_events(rhs, annotate, out);
        }
        ExprKind::Unary { operand, .. } | ExprKind::Postfix { operand, .. } => {
            collect_events(operand, annotate, out)
        }
        ExprKind::Ternary { cond, then, els } => {
            collect_events(cond, annotate, out);
            collect_events(then, annotate, out);
            collect_events(els, annotate, out);
        }
        ExprKind::Index { base, index } => {
            collect_events(base, annotate, out);
            collect_events(index, annotate, out);
        }
        ExprKind::Member { base, .. } => collect_events(base, annotate, out),
        ExprKind::Cast { expr, .. } => collect_events(expr, annotate, out),
        ExprKind::Comma(a, b) => {
            collect_events(a, annotate, out);
            collect_events(b, annotate, out);
        }
        _ => {}
    }
    if let Some(ev) = annotate(e) {
        out.push(ev);
    } else if let Some((name, _)) = e.as_call() {
        out.push(GraphEvent::Call {
            callee: name.to_string(),
            line: e.span.line,
        });
    }
}

/// The per-function result of [`GlobalGraph::summarize`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    /// Per key: maximum total along any inter-procedural path from this
    /// function's entry.
    pub max: BTreeMap<String, i64>,
    /// Per key: a back trace (one line per contributing event or call) for
    /// the maximizing path.
    pub trace: BTreeMap<String, Vec<String>>,
}

/// A warning produced during summarization when a cycle contributes counts
/// (the paper: "If there were sends, then it warns of a possible error").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleWarning {
    /// Function at which the cycle was detected.
    pub function: String,
    /// Keys whose counts occur inside the cycle.
    pub keys: Vec<String>,
    /// Human-readable description of the cycle.
    pub description: String,
}

/// All emitted graphs of a program, linked by function name.
#[derive(Debug, Clone, Default)]
pub struct GlobalGraph {
    graphs: HashMap<String, EmittedGraph>,
}

impl GlobalGraph {
    /// Links emitted graphs into a call graph. Later graphs with the same
    /// function name override earlier ones (protocols never define a
    /// function twice; this mirrors last-wins linking).
    pub fn link(graphs: impl IntoIterator<Item = EmittedGraph>) -> GlobalGraph {
        GlobalGraph {
            graphs: graphs
                .into_iter()
                .map(|g| (g.function.clone(), g))
                .collect(),
        }
    }

    /// The graph for `function`, if emitted.
    pub fn graph(&self, function: &str) -> Option<&EmittedGraph> {
        self.graphs.get(function)
    }

    /// Number of linked functions.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether no graphs are linked.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Computes the inter-procedural [`Summary`] for `root`.
    ///
    /// Calls to functions without an emitted graph contribute nothing
    /// (mirroring xg++, which could only see code it compiled). Cycles —
    /// both in-function loops and call-graph recursion — are handled with
    /// the fixed-point rule: count-free cycles are ignored; cycles that
    /// contain counts are appended to `warnings` and their body counted
    /// once.
    pub fn summarize(&self, root: &str, warnings: &mut Vec<CycleWarning>) -> Summary {
        let mut memo: HashMap<String, Summary> = HashMap::new();
        let mut on_stack: HashSet<String> = HashSet::new();
        self.summarize_rec(root, &mut memo, &mut on_stack, warnings)
    }

    fn summarize_rec(
        &self,
        func: &str,
        memo: &mut HashMap<String, Summary>,
        on_stack: &mut HashSet<String>,
        warnings: &mut Vec<CycleWarning>,
    ) -> Summary {
        if let Some(s) = memo.get(func) {
            return s.clone();
        }
        if on_stack.contains(func) {
            // Call-graph cycle. The caller decides whether it has progress:
            // we contribute an empty summary here (fixed point) and let the
            // in-function count detection below flag progress cycles.
            return Summary::default();
        }
        let Some(graph) = self.graphs.get(func) else {
            return Summary::default();
        };
        on_stack.insert(func.to_string());

        // Resolve per-block weights: own counts plus callee summaries.
        let n = graph.blocks.len();
        let mut weight: Vec<BTreeMap<String, i64>> = vec![BTreeMap::new(); n];
        let mut block_trace: Vec<BTreeMap<String, Vec<String>>> = vec![BTreeMap::new(); n];
        let mut recursive_callees: Vec<String> = Vec::new();
        for (bi, block) in graph.blocks.iter().enumerate() {
            for ev in &block.events {
                match ev {
                    GraphEvent::Count { key, amount, line } => {
                        *weight[bi].entry(key.clone()).or_insert(0) += amount;
                        block_trace[bi]
                            .entry(key.clone())
                            .or_default()
                            .push(format!(
                                "{}:{}: {} in {}",
                                graph.file, line, key, graph.function
                            ));
                    }
                    GraphEvent::Call { callee, line } => {
                        if on_stack.contains(callee) {
                            recursive_callees.push(callee.clone());
                            continue;
                        }
                        let sub = self.summarize_rec(callee, memo, on_stack, warnings);
                        for (key, amount) in &sub.max {
                            if *amount != 0 {
                                *weight[bi].entry(key.clone()).or_insert(0) += amount;
                                let t = block_trace[bi].entry(key.clone()).or_default();
                                t.push(format!(
                                    "{}:{}: call {} from {}",
                                    graph.file, line, callee, graph.function
                                ));
                                if let Some(sub_t) = sub.trace.get(key) {
                                    t.extend(sub_t.iter().cloned());
                                }
                            }
                        }
                    }
                }
            }
        }

        // In-function cycles: a block inside a non-trivial SCC whose weight
        // is non-zero is a cycle with progress.
        let sccs = tarjan_sccs(&graph.blocks);
        let mut cyclic_keys: Vec<String> = Vec::new();
        for scc in &sccs {
            let non_trivial = scc.len() > 1 || graph.blocks[scc[0]].succs.contains(&scc[0]);
            if !non_trivial {
                continue;
            }
            for &b in scc {
                for (key, amount) in &weight[b] {
                    if *amount > 0 {
                        cyclic_keys.push(key.clone());
                    }
                }
            }
        }
        if !recursive_callees.is_empty() {
            // Recursion whose body contains counts is also progress.
            let has_counts = weight.iter().any(|w| w.values().any(|v| *v > 0));
            if has_counts {
                cyclic_keys.push("<recursion>".to_string());
            }
        }
        if !cyclic_keys.is_empty() {
            cyclic_keys.sort();
            cyclic_keys.dedup();
            warnings.push(CycleWarning {
                function: func.to_string(),
                keys: cyclic_keys,
                description: format!(
                    "cycle with side effects in `{func}`: counts inside a loop or recursion \
                     cannot be bounded statically"
                ),
            });
        }

        // Longest-path DP per key over the back-edge-free DAG.
        let order = topo_order(&graph.blocks, graph.entry);
        let keys: HashSet<String> = weight.iter().flat_map(|w| w.keys().cloned()).collect();
        let mut summary = Summary::default();
        for key in keys {
            let mut best: Vec<i64> = vec![i64::MIN; n];
            let mut choice: Vec<Option<usize>> = vec![None; n];
            // Process in reverse topological order (successors first).
            for &b in order.iter().rev() {
                let own = weight[b].get(&key).copied().unwrap_or(0);
                let mut m = 0i64;
                let mut ch = None;
                for &s in &graph.blocks[b].succs {
                    if best[s] != i64::MIN && best[s] > m {
                        m = best[s];
                        ch = Some(s);
                    }
                }
                best[b] = own + m;
                choice[b] = ch;
            }
            let total = if best[graph.entry] == i64::MIN {
                0
            } else {
                best[graph.entry]
            };
            // Build the trace along the chosen chain.
            let mut trace = Vec::new();
            let mut cur = Some(graph.entry);
            while let Some(b) = cur {
                if let Some(t) = block_trace[b].get(&key) {
                    trace.extend(t.iter().cloned());
                }
                cur = choice[b];
            }
            summary.max.insert(key.clone(), total);
            summary.trace.insert(key, trace);
        }

        on_stack.remove(func);
        memo.insert(func.to_string(), summary.clone());
        summary
    }
}

/// Topological-ish order of blocks reachable from `entry` (back edges
/// ignored by virtue of post-order DFS with a visited set).
fn topo_order(blocks: &[EmittedBlock], entry: usize) -> Vec<usize> {
    let mut visited = vec![false; blocks.len()];
    let mut post = Vec::new();
    let mut stack: Vec<(usize, usize)> = vec![(entry, 0)];
    if blocks.is_empty() {
        return post;
    }
    visited[entry] = true;
    while let Some(&mut (u, ref mut i)) = stack.last_mut() {
        if *i < blocks[u].succs.len() {
            let v = blocks[u].succs[*i];
            *i += 1;
            if !visited[v] {
                visited[v] = true;
                stack.push((v, 0));
            }
        } else {
            post.push(u);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Tarjan's strongly-connected components over block indices.
fn tarjan_sccs(blocks: &[EmittedBlock]) -> Vec<Vec<usize>> {
    struct T<'a> {
        blocks: &'a [EmittedBlock],
        index: usize,
        indices: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        sccs: Vec<Vec<usize>>,
    }
    impl T<'_> {
        fn strongconnect(&mut self, v: usize) {
            self.indices[v] = Some(self.index);
            self.low[v] = self.index;
            self.index += 1;
            self.stack.push(v);
            self.on_stack[v] = true;
            for i in 0..self.blocks[v].succs.len() {
                let w = self.blocks[v].succs[i];
                if self.indices[w].is_none() {
                    self.strongconnect(w);
                    self.low[v] = self.low[v].min(self.low[w]);
                } else if self.on_stack[w] {
                    self.low[v] = self.low[v].min(self.indices[w].expect("indexed"));
                }
            }
            if self.low[v] == self.indices[v].expect("indexed") {
                let mut scc = Vec::new();
                loop {
                    let w = self.stack.pop().expect("stack non-empty");
                    self.on_stack[w] = false;
                    scc.push(w);
                    if w == v {
                        break;
                    }
                }
                self.sccs.push(scc);
            }
        }
    }
    let mut t = T {
        blocks,
        index: 0,
        indices: vec![None; blocks.len()],
        low: vec![0; blocks.len()],
        on_stack: vec![false; blocks.len()],
        stack: Vec::new(),
        sccs: Vec::new(),
    };
    for v in 0..blocks.len() {
        if t.indices[v].is_none() {
            t.strongconnect(v);
        }
    }
    t.sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_ast::parse_translation_unit;

    /// Annotates NI_SEND(lane, ...) calls as Count events on "lane<k>".
    fn lane_annotator(e: &Expr) -> Option<GraphEvent> {
        let (name, args) = e.as_call()?;
        if name != "NI_SEND" {
            return None;
        }
        let lane = match &args.first()?.kind {
            ExprKind::IntLit(v, _) => *v,
            _ => 0,
        };
        Some(GraphEvent::Count {
            key: format!("lane{lane}"),
            amount: 1,
            line: e.span.line,
        })
    }

    fn graphs_of(src: &str) -> Vec<EmittedGraph> {
        let tu = parse_translation_unit(src, "p.c").unwrap();
        tu.functions()
            .map(|f| EmittedGraph::from_cfg("p.c", &Cfg::build(f), lane_annotator))
            .collect()
    }

    #[test]
    fn emit_records_counts_and_calls() {
        let g = graphs_of("void h(void) { NI_SEND(2, x); helper(); }");
        assert_eq!(g.len(), 1);
        let events: Vec<_> = g[0].blocks.iter().flat_map(|b| &b.events).collect();
        assert!(events
            .iter()
            .any(|e| matches!(e, GraphEvent::Count { key, .. } if key == "lane2")));
        assert!(events
            .iter()
            .any(|e| matches!(e, GraphEvent::Call { callee, .. } if callee == "helper")));
    }

    #[test]
    fn json_roundtrip() {
        let g = graphs_of("void h(void) { NI_SEND(1, x); }");
        let json = g[0].to_json();
        let back = EmittedGraph::from_json(&json).unwrap();
        assert_eq!(g[0], back);
    }

    #[test]
    fn summarize_straight_line() {
        let graphs = graphs_of("void h(void) { NI_SEND(1, x); NI_SEND(1, y); NI_SEND(2, z); }");
        let gg = GlobalGraph::link(graphs);
        let mut w = Vec::new();
        let s = gg.summarize("h", &mut w);
        assert_eq!(s.max["lane1"], 2);
        assert_eq!(s.max["lane2"], 1);
        assert!(w.is_empty());
    }

    #[test]
    fn summarize_takes_max_over_branches() {
        let graphs = graphs_of(
            "void h(void) { if (c) { NI_SEND(1, x); NI_SEND(1, y); } else { NI_SEND(1, z); } }",
        );
        let gg = GlobalGraph::link(graphs);
        let mut w = Vec::new();
        let s = gg.summarize("h", &mut w);
        assert_eq!(s.max["lane1"], 2);
    }

    #[test]
    fn summarize_crosses_calls() {
        let graphs = graphs_of(
            "void helper(void) { NI_SEND(3, a); }\n\
             void h(void) { helper(); NI_SEND(3, b); }",
        );
        let gg = GlobalGraph::link(graphs);
        let mut w = Vec::new();
        let s = gg.summarize("h", &mut w);
        assert_eq!(s.max["lane3"], 2);
        // Back trace mentions the call and the callee's send.
        let t = &s.trace["lane3"];
        assert!(t.iter().any(|l| l.contains("call helper")), "{t:?}");
        assert!(t.iter().any(|l| l.contains("in helper")), "{t:?}");
    }

    #[test]
    fn unknown_callees_contribute_nothing() {
        let graphs = graphs_of("void h(void) { mystery(); NI_SEND(1, a); }");
        let gg = GlobalGraph::link(graphs);
        let mut w = Vec::new();
        let s = gg.summarize("h", &mut w);
        assert_eq!(s.max["lane1"], 1);
    }

    #[test]
    fn sendless_loop_is_fixed_point() {
        let graphs = graphs_of("void h(void) { while (x) { spin(); } NI_SEND(1, a); }");
        let gg = GlobalGraph::link(graphs);
        let mut w = Vec::new();
        let s = gg.summarize("h", &mut w);
        assert_eq!(s.max["lane1"], 1);
        assert!(w.is_empty(), "sendless cycles must not warn: {w:?}");
    }

    #[test]
    fn loop_with_sends_warns() {
        let graphs = graphs_of("void h(void) { while (x) { NI_SEND(1, a); } }");
        let gg = GlobalGraph::link(graphs);
        let mut w = Vec::new();
        let _ = gg.summarize("h", &mut w);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].function, "h");
        assert_eq!(w[0].keys, vec!["lane1".to_string()]);
    }

    #[test]
    fn sendless_recursion_is_fixed_point() {
        let graphs = graphs_of(
            "void r(void) { if (x) { r(); } }\n\
             void h(void) { r(); NI_SEND(1, a); }",
        );
        let gg = GlobalGraph::link(graphs);
        let mut w = Vec::new();
        let s = gg.summarize("h", &mut w);
        assert_eq!(s.max["lane1"], 1);
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn recursion_with_sends_warns() {
        let graphs = graphs_of("void r(void) { NI_SEND(1, a); if (x) { r(); } }");
        let gg = GlobalGraph::link(graphs);
        let mut w = Vec::new();
        let _ = gg.summarize("r", &mut w);
        assert!(!w.is_empty());
    }

    #[test]
    fn link_len() {
        let gg = GlobalGraph::link(graphs_of("void a(void) { }\nvoid b(void) { }"));
        assert_eq!(gg.len(), 2);
        assert!(!gg.is_empty());
        assert!(gg.graph("a").is_some());
        assert!(gg.graph("zz").is_none());
    }
}
