//! The demand-driven query layer: an incremental front end over [`Driver`].
//!
//! [`CheckEngine::check_sources`] produces byte-identical reports to
//! [`Driver::check_sources`], but memoizes every intermediate artifact by
//! content: a warm run re-does only the work whose inputs actually changed.
//! Work is decomposed into [`Query`] values — parse a file, build its CFGs,
//! check one function, regenerate one unit's program-pass facts — and each
//! phase's queries are fanned out over the driver's worker pool, so the
//! pool schedules *queries*, not units.
//!
//! Invalidation is four-tiered, coarse to fine:
//!
//! 1. **Program** — a key over the suite key plus every unit's source hash.
//!    A hit returns the final report vector without parsing anything.
//! 2. **Unit** — each unit's local reports, keyed by its raw source text
//!    (fast path) with a parsed-AST fallback that survives edits displacing
//!    no token (trailing whitespace, comment-only changes).
//! 3. **Function** (the default, [`Invalidation::Function`]) — a dirty
//!    unit is *diffed* against its per-function dependency index
//!    ([`FnIndexRecord`]): every function is re-fingerprinted, and a
//!    function is **green** — its cached report slice replays verbatim —
//!    when its body fingerprint, its unit's environment hash, and every
//!    read it recorded at check time (same-unit callee bodies for witness
//!    refutation, callee summary content hashes under interprocedural
//!    resolution) are unchanged. Everything else is **red** and re-runs as
//!    a per-function [`Query::Check`] node, which records a fresh
//!    dependency edge set. An edit to one handler body re-checks a handful
//!    of functions, not a 300-function component.
//!    `--invalidate component` disables this tier and re-checks whole
//!    dirty units — the differential oracle; both modes are byte-identical
//!    to a cold batch run by contract.
//! 4. **Component** — program passes re-run per call-graph component
//!    whenever any member unit changed (see
//!    [`call_components`](crate::call_components)); clean components replay
//!    their cached reports.
//!
//! [`Fact`]s are opaque `Any` values and are never cached: when a dirty
//! component contains clean units, those units' facts are regenerated with
//! per-function [`Query::Facts`] nodes (cheaper than a full check — metal
//! machines and purely-local checkers are skipped) while their reports
//! replay from cache. The function index additionally records how many
//! facts each function emitted per checker, so functions that emit none —
//! all of the built-in suite — skip regeneration entirely.
//!
//! The cache-safety policy is *any doubt ⇒ miss*: keys fold everything
//! that can influence output (crate version, cache format, checker suite,
//! config epoch, traversal settings, file names, content hashes), loads
//! validate records against their keys, and anything unverifiable re-runs.
//! A corrupt function index is a miss too, counted loudly in
//! [`RunStats::fn_index_corrupt`].

use crate::cache::{
    summary_content_hash, ComponentRecord, DiskCache, FnEntry, FnIndexLoad, FnIndexRecord,
    ProgramRecord, SummaryRecord, UnitRecord,
};
use crate::driver::{
    call_components, call_info, CallInfo, CheckedUnit, Driver, DriverError, Fact, UnitLocal,
};
use crate::report::Report;
use crate::summaries::Summaries;
use mc_ast::{parse_translation_unit, Fingerprint, Fnv1a, ParseError, TranslationUnit};
use mc_cfg::FnSummary;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// One schedulable unit of work. The engine's phases each build a batch of
/// queries and fan it out over [`Driver::jobs`] workers; outputs are
/// merged in query order, never completion order, preserving the driver's
/// determinism guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// Parse source file `i` and fingerprint the resulting AST.
    Parse(usize),
    /// Build every function CFG of parsed unit `i`.
    Cfg(usize),
    /// Run the local (per-function) checks of one function.
    Check {
        /// Index of the unit in the run's input order.
        unit: usize,
        /// Function index within the unit, in definition order.
        function: usize,
    },
    /// Regenerate the program-pass facts of one function without
    /// re-checking it.
    Facts {
        /// Index of the unit in the run's input order.
        unit: usize,
        /// Function index within the unit, in definition order.
        function: usize,
    },
}

/// The granularity at which a dirty file's previous results are reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Invalidation {
    /// Red/green per function (the default): a dirty unit replays every
    /// function whose fingerprints and recorded reads are unchanged and
    /// re-checks only the red remainder.
    #[default]
    Function,
    /// Re-check every function of a dirty unit — the pre-function-index
    /// behavior, kept as the differential oracle. Byte-identical output by
    /// contract.
    Component,
}

/// A parsed unit with its CFGs and AST fingerprint, shared between memo
/// table entries and the current run.
#[derive(Debug, Clone)]
struct ParsedUnit {
    unit: Arc<CheckedUnit>,
    ast_fp: u64,
}

/// What one query produced.
enum QueryOutput {
    Parsed(Result<(TranslationUnit, u64), ParseError>),
    Cfg(Arc<CheckedUnit>),
    Checked(crate::driver::FunctionOutput),
    Facts(Vec<Vec<Fact>>),
}

/// Counters describing how much of a run was served from cache; returned
/// by [`CheckEngine::check_sources`] alongside the reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of input units.
    pub units: usize,
    /// The whole run was answered by the program-level cache; nothing was
    /// parsed or checked.
    pub program_hit: bool,
    /// Units whose local reports replayed via their source-text key.
    pub source_hits: usize,
    /// Units whose local reports replayed via the AST fallback after a
    /// layout-only edit.
    pub ast_hits: usize,
    /// Units that ran the full local check pass.
    pub units_checked: usize,
    /// Files parsed this run (dirty units plus clean members of dirty
    /// components).
    pub parses: usize,
    /// Call-graph components in the program.
    pub components: usize,
    /// Components whose program-pass reports replayed from cache.
    pub component_hits: usize,
    /// Clean units that re-ran their fact-emitting passes because a
    /// component neighbour changed.
    pub facts_regenerated: usize,
    /// Functions that ran the full per-function check (red nodes).
    pub functions_rechecked: usize,
    /// Functions inside dirty units whose cached report slices replayed
    /// because their fingerprints and recorded reads were unchanged
    /// (green nodes). Functions of fully-clean units replay at the unit
    /// tier and are not counted here.
    pub functions_replayed: usize,
    /// Call-graph components whose program passes re-ran.
    pub components_rechecked: usize,
    /// Function-index records that existed on disk but failed to parse or
    /// validate. Always safe (a corrupt record is just a miss) but loud:
    /// a non-zero value on a healthy cache points at concurrent-writer or
    /// disk trouble.
    pub fn_index_corrupt: usize,
    /// Dirty units this shard left for other shards (or for writers that
    /// already claimed them). Always zero outside shard mode.
    pub units_deferred: usize,
}

/// The incremental check engine: an in-memory memo table over every query,
/// optionally backed by an on-disk [`DiskCache`].
///
/// An engine is keyed by nothing — all scoping lives in the
/// content-addressed keys — so one engine (or one cache directory) can
/// serve different drivers, and runs under a changed configuration simply
/// miss. Reports returned by [`check_sources`] are byte-identical to what
/// [`Driver::check_sources`] returns for the same driver and sources,
/// regardless of cache state and worker count.
///
/// [`check_sources`]: CheckEngine::check_sources
#[derive(Debug, Default)]
pub struct CheckEngine {
    disk: Option<DiskCache>,
    /// Invalidation granularity for dirty units.
    invalidation: Invalidation,
    /// When `Some((i, n))`, this engine is shard `i` of `n`: it runs local
    /// checks only for dirty units it owns (unit-fingerprint hash mod
    /// `n`), skips whole-program passes, and never writes a program
    /// record. See [`CheckEngine::set_shard`].
    shard: Option<(u32, u32)>,
    /// Record keys this engine claimed via [`DiskCache::claim`], so its
    /// own later runs treat them as held-by-self rather than contested.
    claimed: HashSet<u64>,
    /// Parse/CFG memo, keyed by `(file, source hash)` — suite-independent.
    checked: HashMap<u64, ParsedUnit>,
    /// Unit records, each indexed under both its source key and AST key.
    units: HashMap<u64, Arc<UnitRecord>>,
    /// Per-file function indexes by `H(suite, file)` — the red/green
    /// baselines.
    fn_index: HashMap<u64, Arc<FnIndexRecord>>,
    /// Component program-pass reports by component key.
    components: HashMap<u64, Arc<ComponentRecord>>,
    /// Component function-summary stores by component key.
    summaries: HashMap<u64, Arc<Summaries>>,
    /// Per-function summary memo for incremental store computation, keyed
    /// by the recursive input key (see [`Summaries::compute_incremental`]).
    fn_summaries: HashMap<u64, FnSummary>,
    /// Summary content hashes by `H(component key, function name)`,
    /// computed on demand while validating or recording summary reads.
    sum_hashes: HashMap<u64, u64>,
    /// Final report vectors by program key.
    programs: HashMap<u64, Arc<ProgramRecord>>,
}

impl CheckEngine {
    /// Creates an engine with no on-disk cache (memoization only lives for
    /// the engine's lifetime — the `--watch` configuration).
    pub fn in_memory() -> CheckEngine {
        CheckEngine::default()
    }

    /// Creates an engine backed by a disk cache.
    pub fn with_disk(disk: DiskCache) -> CheckEngine {
        CheckEngine {
            disk: Some(disk),
            ..CheckEngine::default()
        }
    }

    /// The disk cache, if one is attached.
    pub fn disk(&self) -> Option<&DiskCache> {
        self.disk.as_ref()
    }

    /// Sets the invalidation granularity (default
    /// [`Invalidation::Function`]). Both modes produce byte-identical
    /// reports; [`Invalidation::Component`] re-checks whole dirty units
    /// and exists as the differential oracle.
    pub fn set_invalidation(&mut self, mode: Invalidation) -> &mut Self {
        self.invalidation = mode;
        self
    }

    /// The configured invalidation granularity.
    pub fn invalidation(&self) -> Invalidation {
        self.invalidation
    }

    /// Puts the engine in shard mode (`Some((i, n))`, `i < n`) or back to
    /// full mode (`None`).
    ///
    /// A shard partitions *work*, not correctness: it parses and
    /// fingerprints every input (cheap, and required so component keys
    /// match across shards), but runs the expensive local pass only for
    /// dirty units whose content key hashes to `i` mod `n`, claiming each
    /// through [`DiskCache::claim`] first so overlapping writers split
    /// instead of duplicating. Shards skip whole-program passes and never
    /// store a program record — their reports are *partial* by design.
    /// The shared cache accumulates every unit/fn-index/summary record;
    /// a subsequent full run over the same cache (`mcheck merge`) finds
    /// all of them warm and produces output byte-identical to a
    /// single-process run.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `i >= n`.
    pub fn set_shard(&mut self, shard: Option<(u32, u32)>) -> &mut Self {
        if let Some((i, n)) = shard {
            assert!(
                n > 0 && i < n,
                "shard index {i} out of range for {n} shards"
            );
        }
        self.shard = shard;
        self
    }

    /// The configured shard, if any.
    pub fn shard(&self) -> Option<(u32, u32)> {
        self.shard
    }

    /// Loads a file's function index: memo first, then disk. A corrupt
    /// disk record is a counted miss, never an error — the engine simply
    /// re-checks the whole unit and overwrites the record.
    fn lookup_fn_index(&mut self, key: u64, stats: &mut RunStats) -> Option<Arc<FnIndexRecord>> {
        if let Some(rec) = self.fn_index.get(&key) {
            return Some(rec.clone());
        }
        match self.disk.as_ref().map(|d| d.load_fn_index(key)) {
            Some(FnIndexLoad::Hit(rec)) => {
                let rec = Arc::new(rec);
                self.fn_index.insert(key, rec.clone());
                Some(rec)
            }
            Some(FnIndexLoad::Corrupt) => {
                stats.fn_index_corrupt += 1;
                None
            }
            Some(FnIndexLoad::Miss) | None => None,
        }
    }

    fn store_fn_index(&mut self, rec: FnIndexRecord) {
        let rec = Arc::new(rec);
        if let Some(d) = &self.disk {
            d.store_fn_index(&rec);
        }
        self.fn_index.insert(rec.key, rec);
    }

    /// The content hash of `name`'s summary in component `comp_key`'s
    /// store, or `None` when the store has no entry for it. Memoized per
    /// `(component, name)` — the store behind a component key is immutable
    /// by construction.
    fn summary_hash(
        &mut self,
        comp_key: u64,
        store: Option<&Summaries>,
        name: &str,
    ) -> Option<u64> {
        let summary = store?.get(name)?;
        let mk = {
            let mut h = Fnv1a::new();
            h.write_u64(comp_key).write_str(name);
            h.finish()
        };
        if let Some(&h) = self.sum_hashes.get(&mk) {
            return Some(h);
        }
        let h = summary_content_hash(summary);
        self.sum_hashes.insert(mk, h);
        Some(h)
    }

    fn lookup_unit(&mut self, src_key: u64, by_ast: Option<u64>) -> Option<Arc<UnitRecord>> {
        if let Some(rec) = self.units.get(&src_key) {
            return Some(rec.clone());
        }
        if let Some(rec) = self
            .disk
            .as_ref()
            .and_then(|d| d.load_unit_by_source(src_key))
        {
            let rec = Arc::new(rec);
            self.insert_unit(&rec);
            return Some(rec);
        }
        let ast_key = by_ast?;
        let rec = match self.units.get(&ast_key) {
            Some(rec) => rec.clone(),
            None => Arc::new(self.disk.as_ref()?.load_unit_by_ast(ast_key)?),
        };
        // Layout-only edit: same AST, new source text. Re-index the record
        // under the new source key so the next run takes the fast path.
        let rec = Arc::new(UnitRecord {
            src_key,
            ..(*rec).clone()
        });
        self.insert_unit(&rec);
        if let Some(d) = &self.disk {
            d.store_unit(&rec);
        }
        Some(rec)
    }

    fn insert_unit(&mut self, rec: &Arc<UnitRecord>) {
        self.units.insert(rec.src_key, rec.clone());
        self.units.insert(rec.ast_key, rec.clone());
    }

    fn lookup_component(&mut self, key: u64) -> Option<Arc<ComponentRecord>> {
        if let Some(rec) = self.components.get(&key) {
            return Some(rec.clone());
        }
        let rec = Arc::new(self.disk.as_ref()?.load_component(key)?);
        self.components.insert(key, rec.clone());
        Some(rec)
    }

    fn lookup_program(&mut self, key: u64) -> Option<Arc<ProgramRecord>> {
        if let Some(rec) = self.programs.get(&key) {
            return Some(rec.clone());
        }
        let rec = Arc::new(self.disk.as_ref()?.load_program(key)?);
        self.programs.insert(key, rec.clone());
        Some(rec)
    }

    /// The summary store of one component: memoized, then disk, then
    /// computed from the (already parsed) member units. Replaying a cached
    /// store is unobservable because [`SummaryRecord`] round-trips every
    /// field of every summary.
    fn component_summaries(
        &mut self,
        driver: &Driver,
        key: u64,
        members: &[&CheckedUnit],
    ) -> Arc<Summaries> {
        if let Some(s) = self.summaries.get(&key) {
            return s.clone();
        }
        let store = match self.disk.as_ref().and_then(|d| d.load_summaries(key)) {
            Some(rec) => {
                let mut s = Summaries::empty();
                for fs in rec.summaries {
                    s.insert(fs);
                }
                s
            }
            None => {
                let s = if self.invalidation == Invalidation::Function {
                    // Function granularity extends to summaries: whole SCCs
                    // whose members and callee inputs are unchanged replay
                    // from the per-function memo instead of re-running
                    // every checker's summarize pass.
                    Summaries::compute_incremental(
                        driver,
                        members,
                        driver.interproc_enabled(),
                        &mut self.fn_summaries,
                    )
                } else {
                    Summaries::compute(driver, members, driver.interproc_enabled())
                };
                if let Some(d) = &self.disk {
                    d.store_summaries(&SummaryRecord {
                        key,
                        summaries: s.iter().cloned().collect(),
                    });
                }
                s
            }
        };
        let store = Arc::new(store);
        self.summaries.insert(key, store.clone());
        store
    }

    /// Checks `(source, file-name)` pairs as one program, reusing every
    /// cached artifact whose key still matches.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::Parse`] on the first file in input order
    /// that fails to parse. Only changed files are ever re-parsed: a file
    /// whose cached record is still valid parsed successfully when the
    /// record was created, and its bytes have not changed since.
    pub fn check_sources(
        &mut self,
        driver: &Driver,
        sources: &[(String, String)],
    ) -> Result<(Vec<Report>, RunStats), DriverError> {
        let suite = driver.suite_key();
        let n = sources.len();
        let mut stats = RunStats {
            units: n,
            ..RunStats::default()
        };

        let src_fps: Vec<u64> = sources
            .iter()
            .map(|(src, _)| Fingerprint::of_source(src))
            .collect();
        let content_keys: Vec<u64> = sources
            .iter()
            .zip(&src_fps)
            .map(|((_, file), fp)| {
                let mut h = Fnv1a::new();
                h.write_str(file).write_u64(*fp);
                h.finish()
            })
            .collect();
        let src_keys: Vec<u64> = content_keys
            .iter()
            .map(|ck| {
                let mut h = Fnv1a::new();
                h.write_u64(suite).write_u64(*ck);
                h.finish()
            })
            .collect();
        let prog_key = {
            let mut h = Fnv1a::new();
            h.write_u64(suite);
            for k in &src_keys {
                h.write_u64(*k);
            }
            h.finish()
        };

        // Tier 1: nothing changed at all. Shards skip this tier — their
        // contract is partial output plus cache population, not a full
        // report set.
        if self.shard.is_none() {
            if let Some(rec) = self.lookup_program(prog_key) {
                stats.program_hit = true;
                stats.source_hits = n;
                return Ok((rec.reports.clone(), stats));
            }
        }

        // Tier 2: per-unit lookup by source text.
        let mut recs: Vec<Option<Arc<UnitRecord>>> = src_keys
            .iter()
            .map(|k| self.lookup_unit(*k, None))
            .collect();
        stats.source_hits = recs.iter().flatten().count();

        // Parse + build CFGs for every unit without a source-key hit.
        let mut parsed: Vec<Option<ParsedUnit>> = vec![None; n];
        let need: Vec<usize> = (0..n).filter(|&i| recs[i].is_none()).collect();
        self.parse_into(
            driver,
            sources,
            &content_keys,
            &need,
            &mut parsed,
            &mut stats,
        )?;

        // AST fallback: a unit whose source changed but whose AST (spans
        // included) did not can replay its reports.
        let mut dirty: Vec<usize> = Vec::new();
        for &i in &need {
            let pu = parsed[i].as_ref().expect("parsed above");
            let ast_key = ast_key_of(suite, &sources[i].1, pu.ast_fp);
            match self.lookup_unit(src_keys[i], Some(ast_key)) {
                Some(rec) => {
                    stats.ast_hits += 1;
                    recs[i] = Some(rec);
                }
                None => dirty.push(i),
            }
        }

        // Partition into call-graph components *before* checking anything:
        // under interprocedural analysis a unit's local reports depend on
        // its whole component, so component keys participate in unit-record
        // validation. Call infos come from cached records for clean units
        // and from the fresh parse for dirty ones — no extra parsing.
        let ast_keys: Vec<u64> = (0..n)
            .map(|i| match &recs[i] {
                Some(r) => r.ast_key,
                None => {
                    let pu = parsed[i].as_ref().expect("dirty units are parsed");
                    ast_key_of(suite, &sources[i].1, pu.ast_fp)
                }
            })
            .collect();
        let infos: Vec<CallInfo> = (0..n)
            .map(|i| match &recs[i] {
                Some(r) => CallInfo {
                    defines: r.defines.clone(),
                    calls: r.calls.clone(),
                },
                None => call_info(&parsed[i].as_ref().expect("parsed").unit.unit),
            })
            .collect();
        let comps = call_components(&infos);
        stats.components = comps.len();
        let mut comp_of = vec![0usize; n];
        for (c, comp) in comps.iter().enumerate() {
            for &i in comp {
                comp_of[i] = c;
            }
        }
        let comp_keys: Vec<u64> = comps
            .iter()
            .map(|comp| {
                let mut keys: Vec<u64> = comp.iter().map(|&i| ast_keys[i]).collect();
                keys.sort_unstable();
                let mut h = Fnv1a::new();
                h.write_u64(suite);
                for k in keys {
                    h.write_u64(k);
                }
                h.finish()
            })
            .collect();

        let interproc = driver.interproc_enabled();
        if interproc {
            // Demote records whose reports were computed under a different
            // component content: a changed neighbour means changed callee
            // summaries, so the unit's local reports may change even though
            // its own source did not.
            let mut demoted: Vec<usize> = (0..n)
                .filter(|&i| {
                    recs[i]
                        .as_ref()
                        .is_some_and(|r| r.summary_key != comp_keys[comp_of[i]])
                })
                .collect();
            if !demoted.is_empty() {
                for &i in &demoted {
                    recs[i] = None;
                }
                self.parse_into(
                    driver,
                    sources,
                    &content_keys,
                    &demoted,
                    &mut parsed,
                    &mut stats,
                )?;
                dirty.append(&mut demoted);
                dirty.sort_unstable();
            }
        }

        // Shard filter: once the dirty list is final (source misses, AST
        // fallback, interproc demotion all applied), a shard keeps only
        // the dirty units it owns — partitioned by the suite-independent
        // unit-fingerprint hash, so every shard of the same input agrees
        // on ownership — and claims each one so a concurrent writer
        // racing on the same key backs off. Unowned dirty units stay
        // unchecked (`recs[i]` remains `None`); the merge run computes or
        // finds them later.
        if let Some((si, sn)) = self.shard {
            let before = dirty.len();
            let mut kept: Vec<usize> = Vec::with_capacity(dirty.len());
            for &i in &dirty {
                if content_keys[i] % u64::from(sn) != u64::from(si) {
                    continue;
                }
                let key = src_keys[i];
                let mine =
                    self.claimed.contains(&key) || self.disk.as_ref().is_none_or(|d| d.claim(key));
                if mine {
                    self.claimed.insert(key);
                    kept.push(i);
                }
            }
            dirty = kept;
            stats.units_deferred = before - dirty.len();
        }

        // Build (or replay) the summary store of every component that will
        // run local checks, parsing any still-clean members it needs.
        let dirty_set: HashSet<usize> = dirty.iter().copied().collect();
        let mut unit_summaries: Vec<Option<Arc<Summaries>>> = vec![None; n];
        if interproc && !dirty.is_empty() {
            let touched: Vec<usize> = (0..comps.len())
                .filter(|&c| comps[c].iter().any(|i| dirty_set.contains(i)))
                .collect();
            let missing: Vec<usize> = touched
                .iter()
                .flat_map(|&c| comps[c].iter().copied())
                .filter(|&i| parsed[i].is_none())
                .collect();
            self.parse_into(
                driver,
                sources,
                &content_keys,
                &missing,
                &mut parsed,
                &mut stats,
            )?;
            for &c in &touched {
                let members: Vec<&CheckedUnit> = comps[c]
                    .iter()
                    .map(|&i| parsed[i].as_ref().expect("parsed above").unit.as_ref())
                    .collect();
                let store = self.component_summaries(driver, comp_keys[c], &members);
                for &i in &comps[c] {
                    unit_summaries[i] = Some(store.clone());
                }
            }
        }

        // Tier 3: local pass for genuinely changed units — red/green per
        // function by default, whole-unit under `--invalidate component`
        // or when a custom checker reads the unit beyond what the function
        // index fingerprints.
        let function_mode =
            self.invalidation == Invalidation::Function && !driver.has_unit_sensitive_checkers();
        stats.units_checked = dirty.len();
        let mut dirty_facts: HashMap<usize, Vec<Vec<Fact>>> = HashMap::new();
        if !dirty.is_empty() {
            let locals = if function_mode {
                self.check_dirty_fn(
                    driver,
                    sources,
                    &src_keys,
                    &parsed,
                    &dirty,
                    &unit_summaries,
                    &comp_keys,
                    &comp_of,
                    &mut stats,
                )
            } else {
                stats.functions_rechecked += dirty
                    .iter()
                    .map(|&i| parsed[i].as_ref().expect("parsed above").unit.cfgs.len())
                    .sum::<usize>();
                self.check_dirty(driver, &parsed, &dirty, &unit_summaries)
            };
            for (&i, local) in dirty.iter().zip(locals) {
                let pu = parsed[i].as_ref().expect("parsed above");
                let info = call_info(&pu.unit.unit);
                let rec = Arc::new(UnitRecord {
                    src_key: src_keys[i],
                    ast_key: ast_keys[i],
                    summary_key: if interproc { comp_keys[comp_of[i]] } else { 0 },
                    defines: info.defines,
                    calls: info.calls,
                    reports: local.reports,
                });
                self.insert_unit(&rec);
                if let Some(d) = &self.disk {
                    d.store_unit(&rec);
                }
                recs[i] = Some(rec);
                dirty_facts.insert(i, local.facts);
            }
        }

        let mut reports: Vec<Report> = Vec::new();
        for rec in recs.iter().flatten() {
            reports.extend(rec.reports.iter().cloned());
        }

        // Whole-program passes need every member's facts, which a shard by
        // definition does not have; they run once, at merge time (or in
        // any full-mode run), over the complete unit set.
        if driver.has_program_checkers() && self.shard.is_none() {
            // Decide per component: replay or re-run.
            let mut rerun: Vec<usize> = Vec::new();
            let mut comp_reports: Vec<Option<Arc<ComponentRecord>>> = vec![None; comps.len()];
            for (c, comp) in comps.iter().enumerate() {
                let is_dirty = comp.iter().any(|i| dirty_set.contains(i));
                if !is_dirty {
                    if let Some(rec) = self.lookup_component(comp_keys[c]) {
                        stats.component_hits += 1;
                        comp_reports[c] = Some(rec);
                        continue;
                    }
                }
                rerun.push(c);
            }
            stats.components_rechecked = rerun.len();

            if !rerun.is_empty() {
                // Every member of a re-run component needs its parsed unit:
                // the program pass walks real CFGs. Clean members also
                // regenerate their facts (facts are never cached).
                let missing: Vec<usize> = rerun
                    .iter()
                    .flat_map(|&c| comps[c].iter().copied())
                    .filter(|&i| parsed[i].is_none())
                    .collect();
                self.parse_into(
                    driver,
                    sources,
                    &content_keys,
                    &missing,
                    &mut parsed,
                    &mut stats,
                )?;

                // Program passes read summaries (the lane checker always,
                // every checker under interproc); facts regeneration only
                // mirrors what the batch local pass would have seen.
                let mut comp_stores: Vec<Option<Arc<Summaries>>> = vec![None; rerun.len()];
                if driver.needs_summaries() {
                    for (j, &c) in rerun.iter().enumerate() {
                        let members: Vec<&CheckedUnit> = comps[c]
                            .iter()
                            .map(|&i| parsed[i].as_ref().expect("parsed above").unit.as_ref())
                            .collect();
                        let store = self.component_summaries(driver, comp_keys[c], &members);
                        if interproc {
                            for &i in &comps[c] {
                                unit_summaries[i] = Some(store.clone());
                            }
                        }
                        comp_stores[j] = Some(store);
                    }
                }

                let regen: Vec<usize> = rerun
                    .iter()
                    .flat_map(|&c| comps[c].iter().copied())
                    .filter(|i| !dirty_set.contains(i))
                    .collect();
                let mut regen_facts: HashMap<usize, Vec<Vec<Fact>>> = HashMap::new();
                let mut queries: Vec<Query> = Vec::new();
                for &i in &regen {
                    regen_facts.insert(i, (0..driver.native_count()).map(|_| Vec::new()).collect());
                    let cu = &parsed[i].as_ref().expect("parsed above").unit;
                    let nfn = cu.cfgs.len();
                    // A function index snapshotted from this exact source
                    // content records how many facts each function emits;
                    // zero-emitters — the whole built-in suite — skip
                    // regeneration outright.
                    let skip: Option<Vec<bool>> = if function_mode {
                        let idx_key = fn_index_key(suite, &sources[i].1);
                        self.lookup_fn_index(idx_key, &mut stats)
                            .filter(|p| p.src_key == src_keys[i] && p.functions.len() == nfn)
                            .map(|p| {
                                cu.unit
                                    .functions()
                                    .zip(&p.functions)
                                    .map(|(f, e)| {
                                        e.name == f.name && e.fact_counts.iter().all(|&c| c == 0)
                                    })
                                    .collect()
                            })
                    } else {
                        None
                    };
                    let mut any = false;
                    for f in 0..nfn {
                        if skip.as_ref().is_some_and(|s| s[f]) {
                            continue;
                        }
                        queries.push(Query::Facts {
                            unit: i,
                            function: f,
                        });
                        any = true;
                    }
                    if any || !function_mode {
                        stats.facts_regenerated += 1;
                    }
                }
                let outputs = run_queries(driver, sources, &[], &parsed, &unit_summaries, &queries);
                for (q, out) in queries.iter().zip(outputs) {
                    match (q, out) {
                        (Query::Facts { unit, .. }, QueryOutput::Facts(f)) => {
                            let dest = regen_facts.get_mut(unit).expect("regen unit");
                            for (ci, v) in f.into_iter().enumerate() {
                                dest[ci].extend(v);
                            }
                        }
                        _ => unreachable!("facts query returns facts"),
                    }
                }

                // Assemble each component's facts in (unit, function) order
                // and run its program passes; components fan out over the
                // pool, outputs merge in component order.
                let work: Vec<Mutex<Option<Vec<Vec<Fact>>>>> = rerun
                    .iter()
                    .map(|&c| {
                        let mut facts: Vec<Vec<Fact>> =
                            (0..driver.native_count()).map(|_| Vec::new()).collect();
                        for &i in &comps[c] {
                            let unit_facts = dirty_facts
                                .remove(&i)
                                .or_else(|| regen_facts.remove(&i))
                                .expect("dirty or regenerated");
                            for (ci, f) in unit_facts.into_iter().enumerate() {
                                facts[ci].extend(f);
                            }
                        }
                        Mutex::new(Some(facts))
                    })
                    .collect();
                let outs: Vec<Vec<Report>> = driver.pool_map(rerun.len(), |j| {
                    let c = rerun[j];
                    let members: Vec<&CheckedUnit> = comps[c]
                        .iter()
                        .map(|&i| parsed[i].as_ref().expect("parsed above").unit.as_ref())
                        .collect();
                    let facts = work[j].lock().unwrap().take().expect("taken once");
                    driver.run_program_passes(&members, facts, comp_stores[j].as_deref())
                });
                for (&c, out) in rerun.iter().zip(outs) {
                    let rec = Arc::new(ComponentRecord {
                        key: comp_keys[c],
                        reports: out,
                    });
                    self.components.insert(rec.key, rec.clone());
                    if let Some(d) = &self.disk {
                        d.store_component(&rec);
                    }
                    comp_reports[c] = Some(rec);
                }
            }

            for rec in comp_reports.into_iter().flatten() {
                reports.extend(rec.reports.iter().cloned());
            }
        }

        reports.sort();
        reports.dedup();

        // A shard's report vector is partial; recording it under the
        // program key would poison tier 1 for every full run.
        if self.shard.is_none() {
            let prog = Arc::new(ProgramRecord {
                key: prog_key,
                reports: reports.clone(),
            });
            self.programs.insert(prog_key, prog.clone());
            if let Some(d) = &self.disk {
                d.store_program(&prog);
            }
        }

        // Bound memo growth across watch iterations: keep only the parse
        // and summary artifacts of the program we just saw.
        let live: HashSet<u64> = content_keys.iter().copied().collect();
        self.checked.retain(|k, _| live.contains(k));
        let live_comps: HashSet<u64> = comp_keys.iter().copied().collect();
        self.summaries.retain(|k, _| live_comps.contains(k));
        let live_idx: HashSet<u64> = sources
            .iter()
            .map(|(_, file)| fn_index_key(suite, file))
            .collect();
        self.fn_index.retain(|k, _| live_idx.contains(k));
        // The per-function memos are content-addressed and cheap per
        // entry; clear them wholesale only if a pathological watch session
        // ever grows them without bound.
        if self.fn_summaries.len() > 200_000 {
            self.fn_summaries.clear();
        }
        if self.sum_hashes.len() > 100_000 {
            self.sum_hashes.clear();
        }

        Ok((reports, stats))
    }

    /// Parses (and CFG-builds) the units in `need`, filling `parsed`,
    /// reusing the parse memo where the content is already known.
    ///
    /// # Errors
    ///
    /// Returns the first parse error in input order (callers pass `need`
    /// in ascending order).
    fn parse_into(
        &mut self,
        driver: &Driver,
        sources: &[(String, String)],
        content_keys: &[u64],
        need: &[usize],
        parsed: &mut [Option<ParsedUnit>],
        stats: &mut RunStats,
    ) -> Result<(), DriverError> {
        let todo: Vec<usize> = need
            .iter()
            .copied()
            .filter(|&i| {
                if parsed[i].is_some() {
                    return false;
                }
                if let Some(pu) = self.checked.get(&content_keys[i]) {
                    parsed[i] = Some(pu.clone());
                    return false;
                }
                true
            })
            .collect();
        if todo.is_empty() {
            return Ok(());
        }
        stats.parses += todo.len();

        let queries: Vec<Query> = todo.iter().map(|&i| Query::Parse(i)).collect();
        let outputs = run_queries(driver, sources, &[], parsed, &[], &queries);
        let mut fps: Vec<u64> = Vec::with_capacity(todo.len());
        let tu_slots: Vec<Mutex<Option<TranslationUnit>>> = {
            let slots: Vec<Mutex<Option<TranslationUnit>>> =
                sources.iter().map(|_| Mutex::new(None)).collect();
            for (&i, out) in todo.iter().zip(outputs) {
                match out {
                    QueryOutput::Parsed(Ok((tu, fp))) => {
                        *slots[i].lock().unwrap() = Some(tu);
                        fps.push(fp);
                    }
                    QueryOutput::Parsed(Err(e)) => return Err(DriverError::Parse(e)),
                    _ => unreachable!("parse query returns parse output"),
                }
            }
            slots
        };

        let queries: Vec<Query> = todo.iter().map(|&i| Query::Cfg(i)).collect();
        let outputs = run_queries(driver, sources, &tu_slots, parsed, &[], &queries);
        for ((&i, out), fp) in todo.iter().zip(outputs).zip(fps) {
            match out {
                QueryOutput::Cfg(unit) => {
                    let pu = ParsedUnit { unit, ast_fp: fp };
                    self.checked.insert(content_keys[i], pu.clone());
                    parsed[i] = Some(pu);
                }
                _ => unreachable!("cfg query returns cfg output"),
            }
        }
        Ok(())
    }

    /// Runs the full local pass of every dirty unit as per-function
    /// [`Query::Check`] items over the pool, merging per unit in
    /// `(unit, function)` order.
    fn check_dirty(
        &self,
        driver: &Driver,
        parsed: &[Option<ParsedUnit>],
        dirty: &[usize],
        unit_summaries: &[Option<Arc<Summaries>>],
    ) -> Vec<UnitLocal> {
        let mut queries: Vec<Query> = Vec::new();
        for &i in dirty {
            let unit = &parsed[i].as_ref().expect("parsed above").unit;
            for f in 0..unit.cfgs.len() {
                queries.push(Query::Check {
                    unit: i,
                    function: f,
                });
            }
        }
        let outputs = run_queries(driver, &[], &[], parsed, unit_summaries, &queries);

        let mut by_unit: HashMap<usize, UnitLocal> = dirty
            .iter()
            .map(|&i| {
                (
                    i,
                    UnitLocal {
                        reports: Vec::new(),
                        facts: (0..driver.native_count()).map(|_| Vec::new()).collect(),
                    },
                )
            })
            .collect();
        for (q, out) in queries.iter().zip(outputs) {
            let (i, fo) = match (q, out) {
                (Query::Check { unit, .. }, QueryOutput::Checked(fo)) => (*unit, fo),
                _ => unreachable!("check query returns check output"),
            };
            let local = by_unit.get_mut(&i).expect("dirty unit");
            local.reports.extend(fo.metal);
            for (ci, sink) in fo.native.into_iter().enumerate() {
                local.reports.extend(sink.reports);
                local.facts[ci].extend(sink.facts);
            }
        }
        dirty
            .iter()
            .map(|&i| by_unit.remove(&i).expect("dirty unit"))
            .collect()
    }

    /// The function-granular tier-3 pass: diffs every dirty unit against
    /// its function index, replays green functions' cached report slices
    /// verbatim, re-checks red ones as per-function [`Query::Check`] nodes
    /// that record fresh dependency edges, and snapshots a new index for
    /// the next run.
    ///
    /// A function is **green** when its body fingerprint matches its
    /// recorded entry, the unit environment hash matches, and every read
    /// the entry recorded still resolves to identical content: same-unit
    /// callee body fingerprints under refutation, callee summary content
    /// hashes under interprocedural resolution. Any doubt — no prior
    /// record, a changed environment, a duplicate function name making
    /// name-matching ambiguous — is red.
    #[allow(clippy::too_many_arguments)]
    fn check_dirty_fn(
        &mut self,
        driver: &Driver,
        sources: &[(String, String)],
        src_keys: &[u64],
        parsed: &[Option<ParsedUnit>],
        dirty: &[usize],
        unit_summaries: &[Option<Arc<Summaries>>],
        comp_keys: &[u64],
        comp_of: &[usize],
        stats: &mut RunStats,
    ) -> Vec<UnitLocal> {
        let suite = driver.suite_key();
        let refute = driver.refute_enabled();
        let interproc = driver.interproc_enabled();

        struct UnitPlan {
            idx_key: u64,
            env: u64,
            /// Per function in definition order: the replayed entry
            /// (green) or `None` (red, re-checked below).
            green: Vec<Option<FnEntry>>,
        }

        let mut plans: Vec<UnitPlan> = Vec::with_capacity(dirty.len());
        let mut queries: Vec<Query> = Vec::new();
        for &i in dirty {
            let cu = &parsed[i].as_ref().expect("parsed above").unit;
            let idx_key = fn_index_key(suite, &sources[i].1);
            let prior = self.lookup_fn_index(idx_key, stats);
            let env = cu.env_fp();
            let fps = cu.fn_fingerprints();
            let names: Vec<&str> = cu.unit.functions().map(|f| f.name.as_str()).collect();
            // Name-matching is only sound when names are unique on both
            // sides; a duplicate definition poisons every green in the
            // unit.
            let unique = {
                let mut seen = HashSet::new();
                names.iter().all(|n| seen.insert(*n))
            };
            let prior = prior.filter(|p| {
                unique && p.env_fp == env && {
                    let mut seen = HashSet::new();
                    p.functions.iter().all(|e| seen.insert(e.name.as_str()))
                }
            });
            let cur_fp: HashMap<&str, u64> = names
                .iter()
                .copied()
                .zip(fps.iter().map(|fp| fp.body))
                .collect();
            let mut green: Vec<Option<FnEntry>> = Vec::with_capacity(names.len());
            for (f, nm) in names.iter().enumerate() {
                let entry = prior
                    .as_ref()
                    .and_then(|p| p.functions.iter().find(|e| e.name == *nm))
                    .filter(|e| {
                        e.body_fp == fps[f].body
                            && (!refute
                                || e.local_deps
                                    .iter()
                                    .all(|(n, fp)| cur_fp.get(n.as_str()) == Some(fp)))
                    });
                // Summary reads validate against the *new* store: equal
                // content hashes mean the re-check would read identical
                // inputs, so the cached slice replays.
                let entry = entry.filter(|e| {
                    !interproc
                        || e.summary_deps.iter().all(|(n, h)| {
                            self.summary_hash(
                                comp_keys[comp_of[i]],
                                unit_summaries[i].as_deref(),
                                n,
                            ) == *h
                        })
                });
                match entry {
                    Some(e) => {
                        stats.functions_replayed += 1;
                        if e.fact_counts.iter().any(|&c| c > 0) {
                            queries.push(Query::Facts {
                                unit: i,
                                function: f,
                            });
                        }
                        green.push(Some(e.clone()));
                    }
                    None => {
                        stats.functions_rechecked += 1;
                        queries.push(Query::Check {
                            unit: i,
                            function: f,
                        });
                        green.push(None);
                    }
                }
            }
            plans.push(UnitPlan {
                idx_key,
                env,
                green,
            });
        }

        let outputs = run_queries(driver, &[], &[], parsed, unit_summaries, &queries);
        let mut fresh: HashMap<(usize, usize), crate::driver::FunctionOutput> = HashMap::new();
        let mut gfacts: HashMap<(usize, usize), Vec<Vec<Fact>>> = HashMap::new();
        for (q, out) in queries.iter().zip(outputs) {
            match (q, out) {
                (Query::Check { unit, function }, QueryOutput::Checked(fo)) => {
                    fresh.insert((*unit, *function), fo);
                }
                (Query::Facts { unit, function }, QueryOutput::Facts(ff)) => {
                    gfacts.insert((*unit, *function), ff);
                }
                _ => unreachable!("query output matches query kind"),
            }
        }

        let mut locals: Vec<UnitLocal> = Vec::with_capacity(dirty.len());
        for (plan, &i) in plans.into_iter().zip(dirty) {
            let cu = &parsed[i].as_ref().expect("parsed above").unit;
            let fps = cu.fn_fingerprints();
            let calls = cu.fn_call_names();
            let names: Vec<&str> = cu.unit.functions().map(|f| f.name.as_str()).collect();
            let index_of: HashMap<&str, usize> =
                names.iter().enumerate().map(|(k, n)| (*n, k)).collect();
            let mut local = UnitLocal {
                reports: Vec::new(),
                facts: (0..driver.native_count()).map(|_| Vec::new()).collect(),
            };
            let mut entries: Vec<FnEntry> = Vec::with_capacity(names.len());
            for (f, green) in plan.green.into_iter().enumerate() {
                match green {
                    Some(entry) => {
                        local.reports.extend(entry.reports.iter().cloned());
                        if entry.fact_counts.iter().any(|&c| c > 0) {
                            let ff = gfacts.remove(&(i, f)).expect("green facts regenerated");
                            for (ci, v) in ff.into_iter().enumerate() {
                                local.facts[ci].extend(v);
                            }
                        }
                        entries.push(entry);
                    }
                    None => {
                        let fo = fresh.remove(&(i, f)).expect("red function checked");
                        let mut slice: Vec<Report> = fo.metal;
                        let mut fact_counts: Vec<u64> = Vec::with_capacity(fo.native.len());
                        for (ci, sink) in fo.native.into_iter().enumerate() {
                            slice.extend(sink.reports);
                            fact_counts.push(sink.facts.len() as u64);
                            local.facts[ci].extend(sink.facts);
                        }
                        let local_deps = if refute {
                            local_call_closure(f, &names, &index_of, calls, fps)
                        } else {
                            Vec::new()
                        };
                        let summary_deps = if interproc {
                            let mut callees: Vec<&str> =
                                calls[f].iter().map(|s| s.as_str()).collect();
                            callees.sort_unstable();
                            callees.dedup();
                            callees
                                .into_iter()
                                .map(|n| {
                                    let h = self.summary_hash(
                                        comp_keys[comp_of[i]],
                                        unit_summaries[i].as_deref(),
                                        n,
                                    );
                                    (n.to_string(), h)
                                })
                                .collect()
                        } else {
                            Vec::new()
                        };
                        local.reports.extend(slice.iter().cloned());
                        entries.push(FnEntry {
                            name: names[f].to_string(),
                            body_fp: fps[f].body,
                            sig_fp: fps[f].sig,
                            reports: slice,
                            fact_counts,
                            local_deps,
                            summary_deps,
                        });
                    }
                }
            }
            self.store_fn_index(FnIndexRecord {
                key: plan.idx_key,
                src_key: src_keys[i],
                env_fp: plan.env,
                functions: entries,
            });
            locals.push(local);
        }
        locals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SM: &str = r#"
        sm wait_for_db {
            decl { scalar } addr, buf;
            start:
                { WAIT_FOR_DB_FULL(addr); } ==> stop
              | { MISCBUS_READ_DB(addr, buf); } ==> { err("Buffer not synchronized"); }
            ;
        }
    "#;

    fn driver() -> Driver {
        let mut d = Driver::new();
        d.add_metal_source(SM).unwrap();
        d
    }

    fn sources() -> Vec<(String, String)> {
        (0..6)
            .map(|i| {
                (
                    format!(
                        "void f{i}(void) {{ MISCBUS_READ_DB(a, b); }}\n\
                         void g{i}(void) {{ WAIT_FOR_DB_FULL(x); MISCBUS_READ_DB(x, y); }}"
                    ),
                    format!("u{i}.c"),
                )
            })
            .collect()
    }

    #[test]
    fn engine_matches_batch_and_memoizes() {
        let d = driver();
        let srcs = sources();
        let batch = d.check_sources(&srcs).unwrap();

        let mut engine = CheckEngine::in_memory();
        let (cold, s1) = engine.check_sources(&d, &srcs).unwrap();
        assert_eq!(cold, batch);
        assert!(!s1.program_hit);
        assert_eq!(s1.units_checked, srcs.len());

        let (warm, s2) = engine.check_sources(&d, &srcs).unwrap();
        assert_eq!(warm, batch);
        assert!(s2.program_hit);
        assert_eq!(s2.units_checked, 0);
        assert_eq!(s2.parses, 0);
    }

    #[test]
    fn one_dirty_unit_rechecks_only_itself() {
        let d = driver();
        let mut srcs = sources();
        let mut engine = CheckEngine::in_memory();
        engine.check_sources(&d, &srcs).unwrap();

        srcs[2]
            .0
            .push_str("\nvoid extra2(void) { MISCBUS_READ_DB(p, q); }\n");
        let (reports, stats) = engine.check_sources(&d, &srcs).unwrap();
        assert_eq!(stats.units_checked, 1);
        assert_eq!(stats.source_hits, srcs.len() - 1);
        assert_eq!(reports, d.check_sources(&srcs).unwrap());
    }

    #[test]
    fn layout_only_edit_replays_via_ast_key() {
        let d = driver();
        let mut srcs = sources();
        let mut engine = CheckEngine::in_memory();
        let (cold, _) = engine.check_sources(&d, &srcs).unwrap();

        // Trailing whitespace displaces no token: AST (spans included) is
        // unchanged, so the unit replays without re-checking.
        srcs[0].0.push_str("   \n");
        let (warm, stats) = engine.check_sources(&d, &srcs).unwrap();
        assert_eq!(stats.ast_hits, 1);
        assert_eq!(stats.units_checked, 0);
        assert_eq!(warm, cold);
    }

    #[test]
    fn suite_change_misses_everything() {
        let srcs = sources();
        let mut engine = CheckEngine::in_memory();
        let d1 = driver();
        engine.check_sources(&d1, &srcs).unwrap();

        let mut d2 = driver();
        d2.prune(false);
        assert_ne!(d1.suite_key(), d2.suite_key());
        let (reports, stats) = engine.check_sources(&d2, &srcs).unwrap();
        assert!(!stats.program_hit);
        assert_eq!(stats.units_checked, srcs.len());
        assert_eq!(reports, d2.check_sources(&srcs).unwrap());
    }

    #[test]
    fn config_epoch_invalidates() {
        let srcs = sources();
        let mut engine = CheckEngine::in_memory();
        let d1 = driver();
        engine.check_sources(&d1, &srcs).unwrap();

        let mut d2 = driver();
        d2.set_config_epoch(7);
        let (_, stats) = engine.check_sources(&d2, &srcs).unwrap();
        assert!(!stats.program_hit);
        assert_eq!(stats.units_checked, srcs.len());
    }

    #[test]
    fn refuted_and_sat_verdicts_survive_the_cache() {
        // Verdicts are decided inside the local pass, so cached unit
        // records carry them: warm runs must replay refuted/sat reports
        // byte-identically, without re-running the solver.
        let mut d = driver();
        d.refute(true);
        let srcs: Vec<(String, String)> = vec![
            (
                "void inf(void) {\n\
                 nak = gCredit - gDebit;\n\
                 if (gCredit == gDebit) {\n\
                 if (nak > 0) { MISCBUS_READ_DB(a, b); }\n\
                 }\n\
                 }"
                .into(),
                "inf.c".into(),
            ),
            (
                "void sat(void) { if (gLen > 4) { MISCBUS_READ_DB(x, y); } }".into(),
                "sat.c".into(),
            ),
        ];
        let batch = d.check_sources(&srcs).unwrap();
        assert!(batch
            .iter()
            .any(|r| r.verdict == crate::report::Verdict::Refuted));
        assert!(batch
            .iter()
            .any(|r| r.verdict == crate::report::Verdict::Sat && !r.model.is_empty()));

        let mut engine = CheckEngine::in_memory();
        let (cold, s1) = engine.check_sources(&d, &srcs).unwrap();
        assert_eq!(cold, batch);
        assert_eq!(s1.units_checked, srcs.len());
        let (warm, s2) = engine.check_sources(&d, &srcs).unwrap();
        assert!(s2.program_hit);
        assert_eq!(warm, batch);
    }

    #[test]
    fn parse_error_only_surfaces_for_dirty_units() {
        let d = driver();
        let mut srcs = sources();
        let mut engine = CheckEngine::in_memory();
        engine.check_sources(&d, &srcs).unwrap();

        srcs[3].0 = "void broken( {".into();
        let err = engine.check_sources(&d, &srcs).unwrap_err();
        assert!(matches!(err, DriverError::Parse(_)));
        assert!(err.to_string().contains("u3.c"));

        // Fixing the file recovers, and clean units were never re-parsed.
        srcs[3].0 = "void fixed(void) { a(); }".into();
        let (_, stats) = engine.check_sources(&d, &srcs).unwrap();
        assert_eq!(stats.units_checked, 1);
    }
}

fn ast_key_of(suite: u64, file: &str, ast_fp: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(suite).write_str(file).write_u64(ast_fp);
    h.finish()
}

/// The mutable-slot key of a file's function index: suite plus file name,
/// deliberately *not* content — the record is a snapshot that each run
/// diffs against and overwrites.
fn fn_index_key(suite: u64, file: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(suite).write_str(file);
    h.finish()
}

/// The names and body fingerprints of every same-unit function
/// transitively reachable from `start` through call edges — the exact
/// callee-body set witness refutation may inline while replaying one of
/// `start`'s reports.
fn local_call_closure(
    start: usize,
    names: &[&str],
    index_of: &HashMap<&str, usize>,
    calls: &[Vec<String>],
    fps: &[mc_ast::FnFingerprint],
) -> Vec<(String, u64)> {
    let mut seen: HashSet<usize> = HashSet::new();
    seen.insert(start);
    let mut stack = vec![start];
    while let Some(k) = stack.pop() {
        for callee in &calls[k] {
            if let Some(&t) = index_of.get(callee.as_str()) {
                if seen.insert(t) {
                    stack.push(t);
                }
            }
        }
    }
    seen.remove(&start);
    let mut deps: Vec<(String, u64)> = seen
        .into_iter()
        .map(|t| (names[t].to_string(), fps[t].body))
        .collect();
    deps.sort_unstable();
    deps
}

/// Fans a batch of queries out over the driver's worker pool and returns
/// their outputs in query order.
fn run_queries(
    driver: &Driver,
    sources: &[(String, String)],
    tu_slots: &[Mutex<Option<TranslationUnit>>],
    parsed: &[Option<ParsedUnit>],
    unit_summaries: &[Option<Arc<Summaries>>],
    queries: &[Query],
) -> Vec<QueryOutput> {
    let store_of =
        |unit: usize| -> Option<&Summaries> { unit_summaries.get(unit).and_then(|s| s.as_deref()) };
    driver.pool_map(queries.len(), |qi| match queries[qi] {
        Query::Parse(i) => {
            let (src, file) = &sources[i];
            QueryOutput::Parsed(parse_translation_unit(src, file).map(|tu| {
                let fp = Fingerprint::of_unit(&tu);
                (tu, fp)
            }))
        }
        Query::Cfg(i) => {
            let tu = tu_slots[i]
                .lock()
                .unwrap()
                .take()
                .expect("parse ran before cfg");
            QueryOutput::Cfg(Arc::new(CheckedUnit::new(tu)))
        }
        Query::Check { unit, function } => {
            let cu = parsed[unit].as_ref().expect("cfg ran before check");
            let f = cu
                .unit
                .unit
                .functions()
                .nth(function)
                .expect("function index in range");
            QueryOutput::Checked(driver.check_one_function(
                &cu.unit,
                f,
                &cu.unit.cfgs[function],
                store_of(unit),
            ))
        }
        Query::Facts { unit, function } => {
            let cu = parsed[unit].as_ref().expect("cfg ran before facts");
            let f = cu
                .unit
                .unit
                .functions()
                .nth(function)
                .expect("function index in range");
            QueryOutput::Facts(driver.collect_function_facts(
                &cu.unit,
                f,
                &cu.unit.cfgs[function],
                store_of(unit),
            ))
        }
    })
}
