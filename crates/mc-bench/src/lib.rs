//! # mc-bench
//!
//! Reproduction harness for the paper's evaluation: one binary per table
//! (`table1` … `table7`, plus `experiments` which prints all of them as
//! the `EXPERIMENTS.md` report), and Criterion benchmarks of the framework
//! (`framework`, `scaling`).
//!
//! All table binaries run the full checker suite over the generated corpus
//! at the canonical seed and classify reports against the corpus manifest,
//! so the printed "Errors" and "False Pos" columns are *measured*, not
//! copied.

use mc_ast::Function;
use mc_cfg::PathStats;
use mc_checkers::{all_checkers, exec_restrict, flash};
use mc_corpus::eval::{evaluate_full, tally, Outcome, Tally};
use mc_corpus::plan::{ProtoPlan, PLANS};
use mc_corpus::{generate, PlantedKind, Protocol, DEFAULT_SEED};
use mc_driver::{CheckedUnit, Driver, Report, Verdict};

/// Everything measured about one protocol, shared by the table binaries.
pub struct ProtocolRun {
    /// The generated protocol (sources + spec + manifest).
    pub protocol: Protocol,
    /// Its plan (paper targets).
    pub plan: &'static ProtoPlan,
    /// Parsed units with each function's CFG built once — the same cache
    /// the driver checked, reused here for the Table 1 path statistics.
    pub units: Vec<CheckedUnit>,
    /// All reports of the full suite.
    pub reports: Vec<Report>,
    /// Reports joined against the manifest.
    pub outcome: Outcome,
    /// Whether the driver ran with path-feasibility pruning.
    pub prune: bool,
    /// Whether the driver resolved call sites through function summaries.
    pub interproc: bool,
    /// Whether the driver ran the symbolic refutation pass.
    pub refute: bool,
}

impl ProtocolRun {
    /// Iterates over all function definitions.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.units.iter().flat_map(|u| u.unit.functions())
    }

    /// Aggregate path statistics (Table 1), from the cached CFGs.
    pub fn path_stats(&self) -> PathStats {
        let mut agg = PathStats::default();
        for u in &self.units {
            for cfg in &u.cfgs {
                agg.merge(&cfg.path_stats());
            }
        }
        agg
    }

    /// Generated lines of code.
    pub fn loc(&self) -> usize {
        self.protocol.loc()
    }

    /// The [`Tally`] for one checker.
    pub fn tally(&self, checker: &str) -> Tally {
        tally(&self.outcome, checker)
    }

    /// Number of planted annotations (Table 4 "Useful").
    pub fn annotations(&self) -> usize {
        self.protocol
            .manifest
            .iter()
            .filter(|p| p.kind == PlantedKind::Annotation)
            .count()
    }

    /// Sums an applied-count metric over all functions.
    pub fn count(&self, f: impl Fn(&Function) -> usize) -> usize {
        self.functions().map(f).sum()
    }

    /// The reports that survived the refutation pass (all of them when the
    /// pass was off). These are what the tables and the FP ladder count.
    pub fn kept_reports(&self) -> impl Iterator<Item = &Report> {
        self.reports
            .iter()
            .filter(|r| r.verdict != Verdict::Refuted)
    }
}

/// Generates, checks, and evaluates all six protocols at the canonical
/// seed, using the machine's available parallelism. This is the shared
/// entry point of every table binary; tables reproduce the paper's xg++,
/// which had no feasibility pruning, so pruning is off here.
pub fn run_all_protocols() -> Vec<ProtocolRun> {
    run_all_protocols_with_jobs(default_jobs())
}

/// [`run_all_protocols`] with an explicit driver worker count.
pub fn run_all_protocols_with_jobs(jobs: usize) -> Vec<ProtocolRun> {
    run_all_protocols_with(jobs, false)
}

/// [`run_all_protocols`] with explicit worker count and pruning setting.
/// `prune = true` is the driver (and `mcheck`) default; `prune = false`
/// reproduces the paper's tables.
pub fn run_all_protocols_with(jobs: usize, prune: bool) -> Vec<ProtocolRun> {
    run_all_protocols_full(jobs, prune, false)
}

/// [`run_all_protocols`] with explicit worker count, pruning, and
/// call-site-resolution settings. `interproc = true` runs the summary
/// engine (`mcheck --interproc`), which resolves the helper-hidden
/// false-positive classes the manifest marks interproc-resolvable.
pub fn run_all_protocols_full(jobs: usize, prune: bool, interproc: bool) -> Vec<ProtocolRun> {
    run_all_protocols_refuted(jobs, prune, interproc, false)
}

/// [`run_all_protocols`] with every analysis setting explicit. `refute =
/// true` runs the symbolic refutation pass (`mcheck --refute`); refuted
/// reports stay in [`ProtocolRun::reports`] with their demoted verdict but
/// are excluded from the manifest join, matching what `mcheck` prints by
/// default.
pub fn run_all_protocols_refuted(
    jobs: usize,
    prune: bool,
    interproc: bool,
    refute: bool,
) -> Vec<ProtocolRun> {
    PLANS
        .iter()
        .enumerate()
        .map(|(i, plan)| {
            let protocol = generate(plan, DEFAULT_SEED.wrapping_add(i as u64));
            let mut driver = Driver::new();
            driver.jobs(jobs);
            driver.prune(prune);
            driver.interproc(interproc);
            driver.refute(refute);
            all_checkers(&mut driver, &protocol.spec).expect("suite registers");
            let units = driver
                .parse_units(&protocol.sources())
                .expect("corpus parses");
            let reports = driver.check_units(&units);
            let kept: Vec<Report> = reports
                .iter()
                .filter(|r| r.verdict != Verdict::Refuted)
                .cloned()
                .collect();
            let outcome = evaluate_full(&protocol, &kept, prune, interproc, refute);
            ProtocolRun {
                protocol,
                plan,
                units,
                reports,
                outcome,
                prune,
                interproc,
                refute,
            }
        })
        .collect()
}

/// The machine's available parallelism (the driver's default worker count).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Reads a `--jobs N` override from the command line, for the table and
/// benchmark binaries. Defaults to [`default_jobs`]; rejects `0`.
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for pair in args.windows(2) {
        if pair[0] == "--jobs" {
            match pair[1].parse::<usize>() {
                Ok(n) if n >= 1 => return n,
                _ => {
                    eprintln!("--jobs expects a positive integer, got `{}`", pair[1]);
                    std::process::exit(2);
                }
            }
        }
    }
    default_jobs()
}

/// Applied-count helpers matching the paper's per-table definitions.
pub mod applied {
    use super::*;

    /// Table 2: number of data-buffer reads.
    pub fn reads(run: &ProtocolRun) -> usize {
        run.count(mc_checkers::buffer_race::count_reads)
    }

    /// Table 3: number of sends.
    pub fn sends(run: &ProtocolRun) -> usize {
        run.count(mc_checkers::msglen::count_sends)
    }

    /// Table 6: number of allocations.
    pub fn allocs(run: &ProtocolRun) -> usize {
        run.count(|f| {
            struct V(usize);
            impl mc_ast::Visitor for V {
                fn visit_expr(&mut self, e: &mc_ast::Expr) {
                    if let Some((flash::DB_ALLOC, _)) = e.as_call() {
                        self.0 += 1;
                    }
                }
            }
            let mut v = V(0);
            mc_ast::walk_function(&mut v, f);
            v.0
        })
    }

    /// Table 6: number of directory operations.
    pub fn dir_ops(run: &ProtocolRun) -> usize {
        run.count(mc_checkers::directory::count_dir_ops)
    }

    /// Table 6: waited sends plus wait calls.
    pub fn send_waits(run: &ProtocolRun) -> usize {
        run.count(mc_checkers::send_wait::count_send_waits)
    }

    /// Table 5: routines and variables checked.
    pub fn routines_and_vars(run: &ProtocolRun) -> (usize, usize) {
        let funcs: Vec<&Function> = run.functions().collect();
        exec_restrict::count_routines_and_vars(&funcs)
    }
}

/// Renders one row of a fixed-width table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut s = String::new();
    for (c, w) in cells.iter().zip(widths) {
        s.push_str(&format!("{c:>w$}  ", w = w));
    }
    s.trim_end().to_string()
}

/// Renders `paper/measured` as a compact cell.
pub fn pm(paper: impl std::fmt::Display, measured: impl std::fmt::Display) -> String {
    format!("{paper}/{measured}")
}

/// The number of non-empty source lines of each checker, for Table 7.
/// metal checkers count their metal source; native checkers count their
/// Rust implementation up to the test module.
pub fn checker_loc() -> Vec<(&'static str, usize)> {
    fn rust_loc(src: &str) -> usize {
        src.split("#[cfg(test)]")
            .next()
            .unwrap_or(src)
            .lines()
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with("//") && !t.starts_with("/*") && !t.starts_with('*')
            })
            .count()
    }
    fn metal_loc(src: &str) -> usize {
        src.lines()
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with("/*") && !t.starts_with('*')
            })
            .count()
    }
    vec![
        (
            "buffer_mgmt",
            rust_loc(include_str!("../../mc-checkers/src/buffer_mgmt.rs")),
        ),
        ("msglen_check", metal_loc(mc_checkers::MSGLEN_METAL)),
        (
            "lanes",
            rust_loc(include_str!("../../mc-checkers/src/lanes.rs")),
        ),
        ("wait_for_db", metal_loc(mc_checkers::WAIT_FOR_DB_METAL)),
        (
            "alloc_check",
            rust_loc(include_str!("../../mc-checkers/src/alloc_check.rs")),
        ),
        (
            "directory",
            rust_loc(include_str!("../../mc-checkers/src/directory.rs")),
        ),
        (
            "send_wait",
            rust_loc(include_str!("../../mc-checkers/src/send_wait.rs")),
        ),
        (
            "exec_restrict",
            rust_loc(include_str!("../../mc-checkers/src/exec_restrict.rs")),
        ),
        ("refcount_bump", metal_loc(mc_checkers::REFCOUNT_BUMP_METAL)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_all_protocols_is_exact() {
        for run in run_all_protocols() {
            assert!(run.outcome.is_exact(), "{}", run.plan.name);
        }
    }

    #[test]
    fn pruned_run_is_exact_too() {
        for run in run_all_protocols_with(default_jobs(), true) {
            assert!(run.outcome.is_exact(), "{} (pruned)", run.plan.name);
        }
    }

    #[test]
    fn interproc_run_is_exact_and_resolves_helper_false_positives() {
        let runs = run_all_protocols_full(default_jobs(), true, true);
        let mut resolvable = 0;
        for run in &runs {
            assert!(run.outcome.is_exact(), "{} (interproc)", run.plan.name);
            resolvable += run
                .protocol
                .manifest
                .iter()
                .filter(|p| p.interproc_resolvable())
                .count();
        }
        // Every un-annotated write-back subroutine site plus the two
        // helper-hidden sites resolves; is_exact above proves the reports
        // are actually gone (a survivor would be unexpected).
        assert_eq!(resolvable, 16);
    }

    #[test]
    fn refuted_run_is_exact_and_demotes_refutable_false_positives() {
        let runs = run_all_protocols_refuted(default_jobs(), true, true, true);
        let mut refutable = 0;
        for run in &runs {
            assert!(run.outcome.is_exact(), "{} (refuted)", run.plan.name);
            refutable += run
                .protocol
                .manifest
                .iter()
                .filter(|p| p.refutable())
                .count();
            // Soundness spot-check: every report the pass demoted sits in
            // a planted false-positive slot — never on a bug.
            for r in run.reports.iter().filter(|r| r.verdict == Verdict::Refuted) {
                assert!(
                    run.protocol.manifest.iter().any(|p| {
                        p.kind == PlantedKind::FalsePositive
                            && p.checker == r.checker
                            && p.function == r.function
                    }),
                    "{}: refuted a report outside any planted FP slot: {}",
                    run.plan.name,
                    r
                );
            }
        }
        // 14 directory-abstraction + 3 directory-speculative + 8 send-wait
        // sites carry the linearly infeasible guard correlation.
        assert_eq!(refutable, 25);
    }

    #[test]
    fn applied_counts_match_plans() {
        for run in run_all_protocols() {
            assert_eq!(
                applied::reads(&run),
                run.plan.reads,
                "{} reads",
                run.plan.name
            );
            assert_eq!(
                applied::sends(&run),
                run.plan.sends,
                "{} sends",
                run.plan.name
            );
            assert_eq!(
                applied::allocs(&run),
                run.plan.allocs,
                "{} allocs",
                run.plan.name
            );
            assert_eq!(
                applied::dir_ops(&run),
                run.plan.dir_ops,
                "{} dir ops",
                run.plan.name
            );
            let (routines, _) = applied::routines_and_vars(&run);
            assert_eq!(routines, run.plan.routines, "{} routines", run.plan.name);
        }
    }

    #[test]
    fn checker_loc_nonzero_and_small() {
        for (name, loc) in checker_loc() {
            assert!(loc > 5, "{name} has {loc} lines");
            assert!(
                loc < 500,
                "{name} has {loc} lines — checkers must stay small"
            );
        }
    }

    #[test]
    fn row_rendering() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
