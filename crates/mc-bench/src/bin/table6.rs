//! Table 6 — the three lower-yield checks: buffer allocation, directory
//! management, and send-wait pairing.

use mc_bench::{applied, jobs_from_args, pm, row, run_all_protocols_with_jobs};

/// Paper values per protocol:
/// (alloc FP, alloc applied, dir FP, dir applied, sw FP, sw applied).
const PAPER: [(usize, usize, usize, usize, usize, usize); 6] = [
    (0, 17, 3, 214, 2, 32),
    (2, 19, 13, 382, 2, 38),
    (0, 5, 1, 88, 0, 11),
    (0, 32, 5, 659, 0, 7),
    (0, 20, 9, 424, 2, 35),
    (0, 4, 0, 1, 2, 2),
];

fn main() {
    println!("Table 6: buffer-alloc / directory / send-wait checks (paper/measured)");
    let widths = [12, 11, 11, 11, 11, 11, 11];
    println!(
        "{}",
        row(
            &["Protocol", "allocFP", "allocApp", "dirFP", "dirApp", "swFP", "swApp"]
                .map(String::from),
            &widths
        )
    );
    let mut totals = [0usize; 6];
    for (run, paper) in run_all_protocols_with_jobs(jobs_from_args())
        .iter()
        .zip(PAPER)
    {
        let alloc = run.tally("alloc_check");
        let dir = run.tally("directory");
        let sw = run.tally("send_wait");
        let measured = [
            alloc.false_positives,
            applied::allocs(run),
            dir.false_positives,
            applied::dir_ops(run),
            sw.false_positives,
            applied::send_waits(run),
        ];
        for (t, m) in totals.iter_mut().zip(measured) {
            *t += m;
        }
        let paper_vals = [paper.0, paper.1, paper.2, paper.3, paper.4, paper.5];
        let mut cells = vec![run.plan.name.to_string()];
        cells.extend(paper_vals.iter().zip(measured).map(|(p, m)| pm(p, m)));
        println!("{}", row(&cells, &widths));
    }
    let paper_totals = [2usize, 97, 31, 1768, 8, 125];
    let mut cells = vec!["total".to_string()];
    cells.extend(paper_totals.iter().zip(totals).map(|(p, m)| pm(p, m)));
    println!("{}", row(&cells, &widths));
    println!("\nNote: the directory check also found 1 bug in bitvector (verified above).");
}
