//! Table 5 — the execution restriction checker.

use mc_bench::{applied, jobs_from_args, pm, row, run_all_protocols_with_jobs};

/// Paper values: (violations, handlers/routines, vars).
const PAPER: [(usize, usize, usize); 6] = [
    (2, 168, 489),
    (4, 227, 768),
    (0, 214, 794),
    (3, 193, 648),
    (2, 200, 668),
    (0, 62, 398),
];

fn main() {
    println!("Table 5: execution restriction checker (paper/measured)");
    let widths = [12, 12, 12, 10];
    println!(
        "{}",
        row(
            &["Protocol", "Violations", "Handlers", "Vars"].map(String::from),
            &widths
        )
    );
    let mut totals = (0, 0, 0);
    for (run, paper) in run_all_protocols_with_jobs(jobs_from_args())
        .iter()
        .zip(PAPER)
    {
        let t = run.tally("exec_restrict");
        let (routines, vars) = applied::routines_and_vars(run);
        totals.0 += t.errors;
        totals.1 += routines;
        totals.2 += vars;
        println!(
            "{}",
            row(
                &[
                    run.plan.name.to_string(),
                    pm(paper.0, t.errors),
                    pm(paper.1, routines),
                    pm(paper.2, vars),
                ],
                &widths
            )
        );
    }
    println!(
        "{}",
        row(
            &[
                "total".to_string(),
                pm(11, totals.0),
                pm(1064, totals.1),
                pm(3765, totals.2)
            ],
            &widths
        )
    );
}
