//! Table 2 — the buffer race condition checker (Figure 2).

use mc_bench::{applied, jobs_from_args, pm, row, run_all_protocols_with_jobs};

/// Paper values: (errors, false positives, applied).
const PAPER: [(usize, usize, usize); 6] = [
    (4, 0, 14),
    (0, 0, 16),
    (0, 0, 2),
    (0, 0, 0),
    (0, 0, 10),
    (0, 1, 17),
];

fn main() {
    println!("Table 2: buffer race condition checker (paper/measured)");
    let widths = [12, 10, 12, 10];
    println!(
        "{}",
        row(
            &["Protocol", "Errors", "False Pos", "Applied"].map(String::from),
            &widths
        )
    );
    let mut totals = (0, 0, 0);
    for (run, paper) in run_all_protocols_with_jobs(jobs_from_args())
        .iter()
        .zip(PAPER)
    {
        let t = run.tally("wait_for_db");
        let applied = applied::reads(run);
        totals.0 += t.errors;
        totals.1 += t.false_positives;
        totals.2 += applied;
        println!(
            "{}",
            row(
                &[
                    run.plan.name.to_string(),
                    pm(paper.0, t.errors),
                    pm(paper.1, t.false_positives),
                    pm(paper.2, applied),
                ],
                &widths
            )
        );
    }
    println!(
        "{}",
        row(
            &[
                "total".to_string(),
                pm(4, totals.0),
                pm(1, totals.1),
                pm(59, totals.2)
            ],
            &widths
        )
    );
}
