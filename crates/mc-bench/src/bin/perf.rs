//! Driver throughput trajectory: checks the full corpus at several worker
//! counts and writes the measurements to `BENCH_driver.json`.
//!
//! ```text
//! cargo run --release -p mc-bench --bin perf [-- --jobs-list 1,2,4,8] [--out FILE]
//! ```
//!
//! Every row records wall time, functions checked per second, and the
//! report count; the report count is asserted identical across worker
//! counts (the driver's determinism guarantee), so a row differing in
//! anything but speed is a bug, not noise. The whole trajectory is
//! measured twice: with path-feasibility pruning on (the driver default)
//! and off, so the cost of the feasibility analysis is visible next to
//! the false positives it removes.

use mc_checkers::all_checkers;
use mc_corpus::plan::PLANS;
use mc_corpus::{generate, DEFAULT_SEED};
use mc_driver::Driver;
use mc_json::Json;
use std::time::Instant;

/// Timed result of one full-corpus check at a fixed worker count.
struct Row {
    workers: usize,
    prune: bool,
    wall_ms: f64,
    functions: usize,
    reports: usize,
}

fn check_corpus(
    sources: &[Vec<(String, String)>],
    specs: &[mc_checkers::flash::FlashSpec],
    jobs: usize,
    prune: bool,
) -> (usize, usize) {
    let mut functions = 0;
    let mut reports = 0;
    for (srcs, spec) in sources.iter().zip(specs) {
        let mut driver = Driver::new();
        driver.jobs(jobs);
        driver.prune(prune);
        all_checkers(&mut driver, spec).expect("suite registers");
        let units = driver.parse_units(srcs).expect("corpus parses");
        functions += units.iter().map(|u| u.cfgs.len()).sum::<usize>();
        reports += driver.check_units(&units).len();
    }
    (functions, reports)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut jobs_list: Vec<usize> = vec![1, 2, 4, 8];
    let mut out = "BENCH_driver.json".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs-list" if i + 1 < args.len() => {
                jobs_list = args[i + 1]
                    .split(',')
                    .map(|s| {
                        s.parse()
                            .expect("--jobs-list expects comma-separated integers")
                    })
                    .filter(|&n| n >= 1)
                    .collect();
                if jobs_list.is_empty() {
                    eprintln!("--jobs-list needs at least one worker count >= 1");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--out" if i + 1 < args.len() => {
                out = args[i + 1].clone();
                i += 2;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: perf [--jobs-list 1,2,4,8] [--out BENCH_driver.json]");
                std::process::exit(2);
            }
        }
    }

    let protocols: Vec<_> = PLANS
        .iter()
        .enumerate()
        .map(|(i, plan)| generate(plan, DEFAULT_SEED.wrapping_add(i as u64)))
        .collect();
    let sources: Vec<Vec<(String, String)>> = protocols.iter().map(|p| p.sources()).collect();
    let specs: Vec<_> = protocols.iter().map(|p| p.spec.clone()).collect();

    // Warm up caches and page in the corpus before timing anything.
    let (functions, _) = check_corpus(&sources, &specs, 1, true);
    println!(
        "corpus: {} protocols, {functions} functions",
        protocols.len()
    );

    const REPS: usize = 3;
    let mut rows = Vec::new();
    for prune in [true, false] {
        let (_, baseline_reports) = check_corpus(&sources, &specs, 1, prune);
        for &jobs in &jobs_list {
            let mut best = f64::INFINITY;
            let mut reports = 0;
            for _ in 0..REPS {
                let start = Instant::now();
                let (_, r) = check_corpus(&sources, &specs, jobs, prune);
                let ms = start.elapsed().as_secs_f64() * 1e3;
                best = best.min(ms);
                reports = r;
            }
            assert_eq!(
                reports, baseline_reports,
                "jobs={jobs} changed the report count — determinism violated"
            );
            println!(
                "prune={} jobs={jobs:<2} wall={best:8.1} ms  {:8.0} functions/s  {reports} reports",
                if prune { "on " } else { "off" },
                functions as f64 / (best / 1e3)
            );
            rows.push(Row {
                workers: jobs,
                prune,
                wall_ms: best,
                functions,
                reports,
            });
        }
    }

    let json = Json::Object(vec![
        ("benchmark".into(), Json::Str("driver_throughput".into())),
        ("corpus_seed".into(), Json::Int(DEFAULT_SEED as i64)),
        ("protocols".into(), Json::Int(protocols.len() as i64)),
        (
            "available_parallelism".into(),
            Json::Int(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1) as i64,
            ),
        ),
        (
            "runs".into(),
            Json::Array(
                rows.iter()
                    .map(|r| {
                        Json::Object(vec![
                            ("workers".into(), Json::Int(r.workers as i64)),
                            ("prune".into(), Json::Bool(r.prune)),
                            (
                                "wall_ms".into(),
                                Json::Float((r.wall_ms * 1e3).round() / 1e3),
                            ),
                            ("functions".into(), Json::Int(r.functions as i64)),
                            (
                                "functions_per_sec".into(),
                                Json::Float((r.functions as f64 / (r.wall_ms / 1e3)).round()),
                            ),
                            ("reports".into(), Json::Int(r.reports as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&out, json.to_pretty()).expect("write BENCH_driver.json");
    println!("wrote {out}");
}
