//! Driver throughput trajectory: checks the full corpus at several worker
//! counts and writes the measurements to `BENCH_driver.json`.
//!
//! ```text
//! cargo run --release -p mc-bench --bin perf [-- --jobs-list 1,2,4,8] [--out FILE]
//! ```
//!
//! Every row records wall time, functions checked per second, and the
//! report count; the report count is asserted identical across worker
//! counts (the driver's determinism guarantee), so a row differing in
//! anything but speed is a bug, not noise. The whole trajectory is
//! measured twice: with path-feasibility pruning on (the driver default)
//! and off, so the cost of the feasibility analysis is visible next to
//! the false positives it removes.

//! A second section measures the incremental engine on the same corpus:
//! a cold run into an empty cache, a warm run (nothing changed), a warm
//! run from a fresh process (disk records only), and a one-file-dirty run.
//! The warm and dirty speedups over cold are recorded in the output so the
//! incremental win is part of the tracked perf trajectory.
//!
//! A third section measures the summary engine: the full corpus checked
//! with call-site resolution off and on (pruning on in both), plus how
//! many function summaries the bottom-up pass computes and how many call
//! sites they resolve, so the cost of `--interproc` is tracked next to
//! the false positives it removes.
//!
//! A fourth section races the two metal engines head-to-head: the three
//! built-in metal checkers over every corpus function, interpreted vs
//! compiled, with identical reports asserted and the match-attempt counts
//! recorded so the dispatch index's pruning is visible, not just its
//! wall-clock effect.
//!
//! A fifth section measures the symbolic refutation pass: the full corpus
//! checked with `--refute` off and on (pruning on in both), plus how many
//! reports the pass demoted, so the cost of slicing and solving every
//! witness is tracked next to the false positives it removes.
//!
//! A sixth section measures the fleet-scale corpus (`--scale 10`):
//! generation time, function count, and a cold check, so the scaling
//! trajectory toward the ROADMAP's fleet-sized workloads is tracked.
//!
//! A seventh section races the two pool schedulers — the legacy fixed
//! shared-counter partitioning vs the Chase-Lev work-stealing default —
//! over the scaled corpus at four workers, recording wall time plus the
//! stealing run's counters (steals, probe attempts, idle time, tasks per
//! worker) so a scheduling regression is diagnosable from the JSON alone.
//!
//! Worker counts above the machine's available parallelism are skipped
//! (and recorded in the output): timing an oversubscribed pool measures
//! scheduler churn, not the driver. Set `MC_BENCH_FORCE_WORKERS=1` to
//! keep them anyway — on a 1-core CI runner that is the only way to
//! exercise the multicore rows at all (expect parity, not speedups, and
//! read the scheduler counters instead of the wall clock).

use mc_cfg::{run_traversal, Mode, Traversal};
use mc_checkers::all_checkers;
use mc_corpus::plan::PLANS;
use mc_corpus::{generate, DEFAULT_SEED};
use mc_driver::cache::DiskCache;
use mc_driver::{CheckEngine, CheckedUnit, Driver, SchedMode, SchedStats, Summaries, Verdict};
use mc_json::Json;
use mc_metal::{
    CandidatePlan, CompiledMachine, CompiledProgram, MetalMachine, MetalProgram, MetalReport,
};
use std::time::Instant;

/// Timed result of one full-corpus check at a fixed worker count.
struct Row {
    workers: usize,
    prune: bool,
    wall_ms: f64,
    functions: usize,
    reports: usize,
}

fn check_corpus(
    sources: &[Vec<(String, String)>],
    specs: &[mc_checkers::flash::FlashSpec],
    jobs: usize,
    prune: bool,
) -> (usize, usize) {
    check_corpus_full(sources, specs, jobs, prune, false)
}

fn check_corpus_full(
    sources: &[Vec<(String, String)>],
    specs: &[mc_checkers::flash::FlashSpec],
    jobs: usize,
    prune: bool,
    interproc: bool,
) -> (usize, usize) {
    let mut functions = 0;
    let mut reports = 0;
    for (srcs, spec) in sources.iter().zip(specs) {
        let mut driver = Driver::new();
        driver.jobs(jobs);
        driver.prune(prune);
        driver.interproc(interproc);
        all_checkers(&mut driver, spec).expect("suite registers");
        let units = driver.parse_units(srcs).expect("corpus parses");
        functions += units.iter().map(|u| u.cfgs.len()).sum::<usize>();
        reports += driver.check_units(&units).len();
    }
    (functions, reports)
}

/// Timed result of the scheduler A/B over the scaled corpus.
struct SchedBench {
    workers: usize,
    wall_ms_fixed: f64,
    wall_ms_stealing: f64,
    speedup: f64,
    /// Counters from the best stealing pass.
    stats: SchedStats,
}

/// Races the fixed shared-counter pool against the work-stealing default
/// over `sources`, asserting identical report counts, and keeps the
/// stealing run's scheduler counters for the JSON output.
fn bench_scheduler(
    sources: &[Vec<(String, String)>],
    specs: &[mc_checkers::flash::FlashSpec],
    jobs: usize,
    reps: usize,
) -> SchedBench {
    let mut wall = [f64::INFINITY; 2];
    let mut reports = [0usize; 2];
    let mut steal_stats = SchedStats::default();
    for (slot, mode) in [SchedMode::Fixed, SchedMode::Stealing]
        .into_iter()
        .enumerate()
    {
        for _ in 0..reps {
            let mut stats = SchedStats::default();
            let mut r = 0usize;
            let start = Instant::now();
            for (srcs, spec) in sources.iter().zip(specs) {
                let mut driver = Driver::new();
                driver.jobs(jobs);
                driver.prune(true);
                driver.scheduler(mode);
                all_checkers(&mut driver, spec).expect("suite registers");
                let units = driver.parse_units(srcs).expect("corpus parses");
                r += driver.check_units(&units).len();
                stats.merge(&driver.take_sched_stats());
            }
            let ms = start.elapsed().as_secs_f64() * 1e3;
            if ms < wall[slot] {
                wall[slot] = ms;
                if mode == SchedMode::Stealing {
                    steal_stats = stats;
                }
            }
            reports[slot] = r;
        }
    }
    assert_eq!(
        reports[0], reports[1],
        "scheduler mode changed the report count — determinism violated"
    );
    SchedBench {
        workers: jobs,
        wall_ms_fixed: wall[0],
        wall_ms_stealing: wall[1],
        speedup: wall[0] / wall[1],
        stats: steal_stats,
    }
}

/// Timed result of the fleet-scale corpus section.
struct ScaleBench {
    scale: usize,
    protocols: usize,
    functions: usize,
    loc: usize,
    gen_ms: f64,
    check_ms: f64,
    reports: usize,
}

/// Generates the `--scale` fleet corpus and measures a cold check of it.
fn bench_scale(
    scale: usize,
    jobs: usize,
) -> (
    ScaleBench,
    Vec<Vec<(String, String)>>,
    Vec<mc_checkers::flash::FlashSpec>,
) {
    let start = Instant::now();
    let fleet = mc_corpus::generate_fleet(DEFAULT_SEED, scale);
    let gen_ms = start.elapsed().as_secs_f64() * 1e3;
    let loc = fleet.iter().map(|p| p.loc()).sum();
    let sources: Vec<Vec<(String, String)>> = fleet.iter().map(|p| p.sources()).collect();
    let specs: Vec<_> = fleet.iter().map(|p| p.spec.clone()).collect();
    let start = Instant::now();
    let (functions, reports) = check_corpus(&sources, &specs, jobs, true);
    let check_ms = start.elapsed().as_secs_f64() * 1e3;
    let bench = ScaleBench {
        scale,
        protocols: fleet.len(),
        functions,
        loc,
        gen_ms,
        check_ms,
        reports,
    };
    (bench, sources, specs)
}

/// Timed result of the summary-engine comparison (pruning on in both).
struct InterprocBench {
    workers: usize,
    wall_ms_off: f64,
    wall_ms_on: f64,
    reports_off: usize,
    reports_on: usize,
    summaries_computed: usize,
    call_sites_resolved: usize,
}

/// Measures the corpus with call-site resolution off vs on, and counts
/// what the bottom-up summary pass produces.
fn bench_interproc(
    sources: &[Vec<(String, String)>],
    specs: &[mc_checkers::flash::FlashSpec],
    jobs: usize,
    reps: usize,
) -> InterprocBench {
    let mut wall = [f64::INFINITY; 2];
    let mut reports = [0usize; 2];
    for (slot, interproc) in [false, true].into_iter().enumerate() {
        for _ in 0..reps {
            let start = Instant::now();
            let (_, r) = check_corpus_full(sources, specs, jobs, true, interproc);
            wall[slot] = wall[slot].min(start.elapsed().as_secs_f64() * 1e3);
            reports[slot] = r;
        }
    }
    assert!(
        reports[1] <= reports[0],
        "summaries added reports ({} -> {})",
        reports[0],
        reports[1]
    );

    let mut summaries_computed = 0;
    let mut call_sites_resolved = 0;
    for (srcs, spec) in sources.iter().zip(specs) {
        let mut driver = Driver::new();
        driver.prune(true);
        driver.interproc(true);
        all_checkers(&mut driver, spec).expect("suite registers");
        let units = driver.parse_units(srcs).expect("corpus parses");
        let refs: Vec<&CheckedUnit> = units.iter().collect();
        let stats = Summaries::compute(&driver, &refs, true).stats();
        summaries_computed += stats.computed;
        call_sites_resolved += stats.call_sites_resolved;
    }

    InterprocBench {
        workers: jobs,
        wall_ms_off: wall[0],
        wall_ms_on: wall[1],
        reports_off: reports[0],
        reports_on: reports[1],
        summaries_computed,
        call_sites_resolved,
    }
}

/// Timed result of the refutation comparison (pruning on in both).
struct RefuteBench {
    workers: usize,
    wall_ms_off: f64,
    wall_ms_on: f64,
    reports_total: usize,
    reports_refuted: usize,
}

/// Measures the corpus with the symbolic refutation pass off vs on, and
/// counts the reports it demotes.
fn bench_refute(
    sources: &[Vec<(String, String)>],
    specs: &[mc_checkers::flash::FlashSpec],
    jobs: usize,
    reps: usize,
) -> RefuteBench {
    let mut wall = [f64::INFINITY; 2];
    let mut totals = [0usize; 2];
    let mut refuted = 0usize;
    for (slot, refute) in [false, true].into_iter().enumerate() {
        for _ in 0..reps {
            let mut total = 0;
            let mut demoted = 0;
            let start = Instant::now();
            for (srcs, spec) in sources.iter().zip(specs) {
                let mut driver = Driver::new();
                driver.jobs(jobs);
                driver.prune(true);
                driver.refute(refute);
                all_checkers(&mut driver, spec).expect("suite registers");
                let units = driver.parse_units(srcs).expect("corpus parses");
                let reports = driver.check_units(&units);
                total += reports.len();
                demoted += reports
                    .iter()
                    .filter(|r| r.verdict == Verdict::Refuted)
                    .count();
            }
            wall[slot] = wall[slot].min(start.elapsed().as_secs_f64() * 1e3);
            totals[slot] = total;
            if refute {
                refuted = demoted;
            }
        }
    }
    // The pass only demotes: the report set itself is unchanged.
    assert_eq!(
        totals[0], totals[1],
        "refutation changed the report count ({} -> {})",
        totals[0], totals[1]
    );
    RefuteBench {
        workers: jobs,
        wall_ms_off: wall[0],
        wall_ms_on: wall[1],
        reports_total: totals[1],
        reports_refuted: refuted,
    }
}

/// Timed head-to-head of the two metal engines over the corpus functions.
struct MetalDispatchBench {
    functions: usize,
    wall_ms_interp: f64,
    wall_ms_compiled: f64,
    attempts_interp: u64,
    attempts_compiled: u64,
    candidates: u64,
    reports: usize,
    speedup: f64,
}

/// Runs the three built-in metal checkers over every corpus function with
/// each engine, timing only traversal + matching (the corpus is parsed
/// once, outside the clock). Reports must be identical; the compiled
/// engine must be at least 5x faster single-threaded.
fn bench_metal_dispatch(sources: &[Vec<(String, String)>], reps: usize) -> MetalDispatchBench {
    let progs: Vec<MetalProgram> = [
        mc_checkers::WAIT_FOR_DB_METAL,
        mc_checkers::MSGLEN_METAL,
        mc_checkers::REFCOUNT_BUMP_METAL,
    ]
    .iter()
    .map(|src| MetalProgram::parse(src).expect("builtin metal parses"))
    .collect();
    let compiled: Vec<CompiledProgram> = progs
        .iter()
        .map(|p| CompiledProgram::compile(p).expect("builtin metal compiles"))
        .collect();

    let driver = Driver::new();
    let units: Vec<CheckedUnit> = sources
        .iter()
        .flat_map(|srcs| driver.parse_units(srcs).expect("corpus parses"))
        .collect();
    let functions: usize = units.iter().map(|u| u.cfgs.len()).sum();
    let traversal = Traversal::new(Mode::StateSet);

    let mut wall_interp = f64::INFINITY;
    let mut interp_reports: Vec<MetalReport> = Vec::new();
    let mut attempts_interp = 0u64;
    let mut candidates = 0u64;
    for _ in 0..reps {
        let mut reports = Vec::new();
        let mut attempts = 0u64;
        let mut cands = 0u64;
        let start = Instant::now();
        for unit in &units {
            for cfg in &unit.cfgs {
                for prog in &progs {
                    let mut m = MetalMachine::new(prog);
                    let init = m.start_state();
                    run_traversal(cfg, &mut m, init, traversal);
                    attempts += m.attempts;
                    cands += m.candidates;
                    reports.append(&mut m.reports);
                }
            }
        }
        wall_interp = wall_interp.min(start.elapsed().as_secs_f64() * 1e3);
        interp_reports = reports;
        attempts_interp = attempts;
        candidates = cands;
    }

    let mut wall_compiled = f64::INFINITY;
    let mut compiled_reports: Vec<MetalReport> = Vec::new();
    let mut attempts_compiled = 0u64;
    let refs: Vec<&CompiledProgram> = compiled.iter().collect();
    for _ in 0..reps {
        let mut reports = Vec::new();
        let mut attempts = 0u64;
        let start = Instant::now();
        for unit in &units {
            for cfg in &unit.cfgs {
                // The driver's compiled path: one plan per program over a
                // shared extraction walk, then plan-replaying traversals.
                let plans = CandidatePlan::build_many(&refs, cfg);
                for (cp, plan) in compiled.iter().zip(&plans) {
                    let mut m = CompiledMachine::with_plan(cp, plan);
                    let init = m.start_state();
                    run_traversal(cfg, &mut m, init, traversal);
                    attempts += m.attempts + plan.attempts;
                    reports.append(&mut m.reports);
                }
            }
        }
        wall_compiled = wall_compiled.min(start.elapsed().as_secs_f64() * 1e3);
        compiled_reports = reports;
        attempts_compiled = attempts;
    }

    assert_eq!(
        interp_reports, compiled_reports,
        "engines disagree on the corpus"
    );
    let speedup = wall_interp / wall_compiled;
    assert!(
        speedup >= 5.0,
        "compiled metal engine is only {speedup:.2}x faster than the \
         interpreter (expected >= 5x; interp {wall_interp:.1} ms, \
         compiled {wall_compiled:.1} ms)"
    );

    MetalDispatchBench {
        functions,
        wall_ms_interp: wall_interp,
        wall_ms_compiled: wall_compiled,
        attempts_interp,
        attempts_compiled,
        candidates,
        reports: compiled_reports.len(),
        speedup,
    }
}

/// Timed result of one incremental-engine phase over the whole corpus.
struct IncPhase {
    phase: &'static str,
    wall_ms: f64,
    reports: usize,
    /// Red functions: full per-function re-checks this phase ran.
    functions_rechecked: usize,
    /// Call-graph components whose program passes re-ran.
    components_rechecked: usize,
}

/// Aggregated engine counters over every protocol of one corpus pass.
#[derive(Default, Clone, Copy)]
struct EngineRun {
    reports: usize,
    functions_rechecked: usize,
    components_rechecked: usize,
}

fn build_drivers(specs: &[mc_checkers::flash::FlashSpec]) -> Vec<Driver> {
    specs
        .iter()
        .map(|spec| {
            let mut driver = Driver::new();
            driver.prune(true);
            all_checkers(&mut driver, spec).expect("suite registers");
            driver
        })
        .collect()
}

fn disk_engines(root: &std::path::Path, n: usize) -> Vec<CheckEngine> {
    (0..n)
        .map(|i| {
            let disk = DiskCache::open(root.join(format!("p{i}"))).expect("cache dir");
            CheckEngine::with_disk(disk)
        })
        .collect()
}

fn check_engines(
    engines: &mut [CheckEngine],
    drivers: &[Driver],
    sources: &[Vec<(String, String)>],
) -> EngineRun {
    let mut run = EngineRun::default();
    for ((e, d), s) in engines.iter_mut().zip(drivers).zip(sources) {
        let (reports, stats) = e.check_sources(d, s).expect("corpus parses");
        run.reports += reports.len();
        run.functions_rechecked += stats.functions_rechecked;
        run.components_rechecked += stats.components_rechecked;
    }
    run
}

/// The bench corpus with a hook-compliant probe function appended to the
/// first protocol's first file, its body `stmts` statements long. Varying
/// `stmts` between runs is a *body-only edit of one existing function in
/// one file* — the editor-save scenario the red/green engine targets.
fn with_probe_body(sources: &[Vec<(String, String)>], stmts: usize) -> Vec<Vec<(String, String)>> {
    let mut out = sources.to_vec();
    let first = out[0].first_mut().expect("protocol has files");
    let body = "PROC_DEFS(); ".to_string() + &"PROC_PROLOGUE(); ".repeat(stmts);
    first
        .0
        .push_str(&format!("\nvoid __bench_probe(void) {{ {body}}}\n"));
    out
}

/// Measures cold / warm / warm-from-disk / one-file-dirty engine runs.
fn bench_incremental(
    sources: &[Vec<(String, String)>],
    specs: &[mc_checkers::flash::FlashSpec],
    reps: usize,
) -> Vec<IncPhase> {
    let drivers = build_drivers(specs);
    let root = std::env::temp_dir().join(format!("mc-bench-cache-{}", std::process::id()));
    // Every phase runs the probed corpus, so the dirty phase measures a
    // body edit of a function that already exists, not a new definition.
    let base = with_probe_body(sources, 1);

    // Cold: fresh engine, empty cache directory (recreated every rep so
    // repetitions stay cold).
    let mut cold_best = f64::INFINITY;
    let mut cold = EngineRun::default();
    let mut engines = Vec::new();
    for _ in 0..reps {
        let _ = std::fs::remove_dir_all(&root);
        engines = disk_engines(&root, base.len());
        let start = Instant::now();
        cold = check_engines(&mut engines, &drivers, &base);
        cold_best = cold_best.min(start.elapsed().as_secs_f64() * 1e3);
    }

    // Warm: same engine, nothing changed — answered from the in-memory
    // program-level memo.
    let mut warm_best = f64::INFINITY;
    let mut warm = EngineRun::default();
    for _ in 0..reps {
        let start = Instant::now();
        warm = check_engines(&mut engines, &drivers, &base);
        warm_best = warm_best.min(start.elapsed().as_secs_f64() * 1e3);
    }

    // Warm from disk: a fresh process (new engine) over the populated
    // cache directory.
    let mut disk_best = f64::INFINITY;
    let mut disk = EngineRun::default();
    for _ in 0..reps {
        let mut fresh = disk_engines(&root, base.len());
        let start = Instant::now();
        disk = check_engines(&mut fresh, &drivers, &base);
        disk_best = disk_best.min(start.elapsed().as_secs_f64() * 1e3);
    }

    // One file dirty: the editor-save scenario — a body-only edit to one
    // function in one file of the whole corpus. The function-granular
    // engine re-checks just the edited probe and replays everything else
    // green; the untouched protocols answer from their program-level
    // memos. The probe body varies per rep so every rep measures a real
    // clean-to-dirty transition instead of hitting the previous rep's
    // memoized dirty result.
    let mut dirty_best = f64::INFINITY;
    let mut dirty = EngineRun::default();
    for rep in 0..reps {
        let dirty_sources = with_probe_body(sources, rep + 2);
        // Re-prime with the clean corpus so every rep starts from the same
        // warm state (cheap: program-level memo hit).
        check_engines(&mut engines, &drivers, &base);
        let start = Instant::now();
        dirty = check_engines(&mut engines, &drivers, &dirty_sources);
        dirty_best = dirty_best.min(start.elapsed().as_secs_f64() * 1e3);
    }

    assert_eq!(warm.reports, cold.reports, "warm run changed the reports");
    assert_eq!(disk.reports, cold.reports, "disk-warm run changed reports");

    // The replay must be byte-identical, not merely count-identical: one
    // more dirty transition, diffed report-by-report against the batch
    // driver on the same edited sources.
    check_engines(&mut engines, &drivers, &base);
    let final_sources = with_probe_body(sources, reps + 2);
    for ((e, d), s) in engines.iter_mut().zip(&drivers).zip(&final_sources) {
        let (replayed, _) = e.check_sources(d, s).expect("corpus parses");
        let batch = d.check_sources(s).expect("corpus parses");
        assert_eq!(
            replayed, batch,
            "function-granular replay diverged from the batch driver"
        );
    }
    let _ = std::fs::remove_dir_all(&root);

    let phase = |phase: &'static str, wall_ms: f64, run: EngineRun| IncPhase {
        phase,
        wall_ms,
        reports: run.reports,
        functions_rechecked: run.functions_rechecked,
        components_rechecked: run.components_rechecked,
    };
    vec![
        phase("cold", cold_best, cold),
        phase("warm", warm_best, warm),
        phase("warm_disk", disk_best, disk),
        phase("one_dirty", dirty_best, dirty),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut jobs_list: Vec<usize> = vec![1, 2, 4, 8];
    let mut out = "BENCH_driver.json".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs-list" if i + 1 < args.len() => {
                jobs_list = args[i + 1]
                    .split(',')
                    .map(|s| {
                        s.parse()
                            .expect("--jobs-list expects comma-separated integers")
                    })
                    .filter(|&n| n >= 1)
                    .collect();
                if jobs_list.is_empty() {
                    eprintln!("--jobs-list needs at least one worker count >= 1");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--out" if i + 1 < args.len() => {
                out = args[i + 1].clone();
                i += 2;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: perf [--jobs-list 1,2,4,8] [--out BENCH_driver.json]");
                std::process::exit(2);
            }
        }
    }

    // Timing a pool of more workers than the machine has cores measures
    // scheduler churn, not the driver: skip those counts (the earlier
    // workers=4 row regressing on a 1-core runner was exactly this).
    // MC_BENCH_FORCE_WORKERS=1 keeps them — the only way to exercise the
    // multicore rows on a 1-core CI runner; read the scheduler counters,
    // not the wall clock, when forcing.
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let force_workers = std::env::var("MC_BENCH_FORCE_WORKERS").is_ok_and(|v| v != "0");
    let mut skipped_workers: Vec<usize> =
        jobs_list.iter().copied().filter(|&j| j > avail).collect();
    if force_workers {
        if !skipped_workers.is_empty() {
            println!(
                "MC_BENCH_FORCE_WORKERS set: keeping oversubscribed worker counts \
                 {skipped_workers:?} on {avail} core(s)"
            );
        }
        skipped_workers.clear();
    } else {
        jobs_list.retain(|&j| j <= avail);
        if jobs_list.is_empty() {
            jobs_list.push(avail);
        }
        if !skipped_workers.is_empty() {
            println!("skipping worker counts {skipped_workers:?}: only {avail} core(s) available");
        }
    }

    let protocols: Vec<_> = PLANS
        .iter()
        .enumerate()
        .map(|(i, plan)| generate(plan, DEFAULT_SEED.wrapping_add(i as u64)))
        .collect();
    let sources: Vec<Vec<(String, String)>> = protocols.iter().map(|p| p.sources()).collect();
    let specs: Vec<_> = protocols.iter().map(|p| p.spec.clone()).collect();

    // Warm up caches and page in the corpus before timing anything.
    let (functions, _) = check_corpus(&sources, &specs, 1, true);
    println!(
        "corpus: {} protocols, {functions} functions",
        protocols.len()
    );

    const REPS: usize = 3;
    let mut rows = Vec::new();
    for prune in [true, false] {
        let (_, baseline_reports) = check_corpus(&sources, &specs, 1, prune);
        for &jobs in &jobs_list {
            let mut best = f64::INFINITY;
            let mut reports = 0;
            for _ in 0..REPS {
                let start = Instant::now();
                let (_, r) = check_corpus(&sources, &specs, jobs, prune);
                let ms = start.elapsed().as_secs_f64() * 1e3;
                best = best.min(ms);
                reports = r;
            }
            assert_eq!(
                reports, baseline_reports,
                "jobs={jobs} changed the report count — determinism violated"
            );
            println!(
                "prune={} jobs={jobs:<2} wall={best:8.1} ms  {:8.0} functions/s  {reports} reports",
                if prune { "on " } else { "off" },
                functions as f64 / (best / 1e3)
            );
            rows.push(Row {
                workers: jobs,
                prune,
                wall_ms: best,
                functions,
                reports,
            });
        }
    }

    let inc = bench_incremental(&sources, &specs, REPS);
    let cold_ms = inc[0].wall_ms;
    for p in &inc {
        println!(
            "incremental {:<9} wall={:8.2} ms  {:6.1}x vs cold  {} reports  \
             ({} functions re-checked, {} components)",
            p.phase,
            p.wall_ms,
            cold_ms / p.wall_ms,
            p.reports,
            p.functions_rechecked,
            p.components_rechecked
        );
    }
    let warm_speedup = cold_ms / inc[1].wall_ms;
    let one_dirty_speedup = cold_ms / inc[3].wall_ms;
    assert!(
        warm_speedup >= 5.0,
        "warm re-check is only {warm_speedup:.1}x faster than cold (expected >= 5x)"
    );
    assert!(
        one_dirty_speedup >= 10.0,
        "one-dirty re-check is only {one_dirty_speedup:.1}x faster than cold \
         (expected >= 10x with function-granular invalidation)"
    );
    assert!(
        inc[3].functions_rechecked * 10 < functions,
        "a body-only edit re-checked {} of {functions} corpus functions \
         (expected < 10% on the per-function path)",
        inc[3].functions_rechecked
    );

    let ip_jobs = jobs_list.iter().copied().max().unwrap_or(1);
    let ip = bench_interproc(&sources, &specs, ip_jobs, REPS);
    println!(
        "interproc off wall={:8.1} ms  {} reports",
        ip.wall_ms_off, ip.reports_off
    );
    println!(
        "interproc on  wall={:8.1} ms  {} reports  ({} summaries, {} call sites resolved)",
        ip.wall_ms_on, ip.reports_on, ip.summaries_computed, ip.call_sites_resolved
    );

    let rb = bench_refute(&sources, &specs, ip_jobs, REPS);
    println!(
        "refute off wall={:8.1} ms  {} reports",
        rb.wall_ms_off, rb.reports_total
    );
    println!(
        "refute on  wall={:8.1} ms  {} reports  ({} demoted to refuted)",
        rb.wall_ms_on, rb.reports_total, rb.reports_refuted
    );

    let md = bench_metal_dispatch(&sources, REPS);
    println!(
        "metal interp   wall={:8.1} ms  {:10} match attempts over {} candidates",
        md.wall_ms_interp, md.attempts_interp, md.candidates
    );
    println!(
        "metal compiled wall={:8.1} ms  {:10} match attempts  ({:.1}x faster, {} reports both ways)",
        md.wall_ms_compiled, md.attempts_compiled, md.speedup, md.reports
    );

    // Fleet scale: generate the scale-10 corpus and check it cold, then
    // race the two pool schedulers over it at four workers.
    const SCALE: usize = 10;
    const SCHED_WORKERS: usize = 4;
    let (sc, fleet_sources, fleet_specs) = bench_scale(SCALE, ip_jobs);
    println!(
        "scale {SCALE}: {} protocols, {} functions, {} loc  gen={:8.1} ms  cold check={:8.1} ms  {} reports",
        sc.protocols, sc.functions, sc.loc, sc.gen_ms, sc.check_ms, sc.reports
    );

    let sb = bench_scheduler(&fleet_sources, &fleet_specs, SCHED_WORKERS, REPS.min(2));
    println!(
        "sched fixed    wall={:8.1} ms  (workers={})",
        sb.wall_ms_fixed, sb.workers
    );
    println!(
        "sched stealing wall={:8.1} ms  {:.2}x vs fixed  ({} steals / {} probes, idle {:.1} ms, tasks/worker {:?})",
        sb.wall_ms_stealing,
        sb.speedup,
        sb.stats.steals,
        sb.stats.steal_attempts,
        sb.stats.idle_ns as f64 / 1e6,
        sb.stats.tasks_per_worker
    );
    if avail < SCHED_WORKERS {
        println!(
            "note: {avail} core(s) available — fixed-vs-stealing parity is expected here; \
             the steal counters above are the evidence the scheduler is live"
        );
    }

    let json = Json::Object(vec![
        ("benchmark".into(), Json::Str("driver_throughput".into())),
        ("corpus_seed".into(), Json::Int(DEFAULT_SEED as i64)),
        ("protocols".into(), Json::Int(protocols.len() as i64)),
        ("available_parallelism".into(), Json::Int(avail as i64)),
        (
            "skipped_workers".into(),
            Json::Array(
                skipped_workers
                    .iter()
                    .map(|&w| Json::Int(w as i64))
                    .collect(),
            ),
        ),
        (
            "runs".into(),
            Json::Array(
                rows.iter()
                    .map(|r| {
                        Json::Object(vec![
                            ("workers".into(), Json::Int(r.workers as i64)),
                            ("prune".into(), Json::Bool(r.prune)),
                            (
                                "wall_ms".into(),
                                Json::Float((r.wall_ms * 1e3).round() / 1e3),
                            ),
                            ("functions".into(), Json::Int(r.functions as i64)),
                            (
                                "functions_per_sec".into(),
                                Json::Float((r.functions as f64 / (r.wall_ms / 1e3)).round()),
                            ),
                            ("reports".into(), Json::Int(r.reports as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "incremental".into(),
            Json::Object(vec![
                (
                    "phases".into(),
                    Json::Array(
                        inc.iter()
                            .map(|p| {
                                Json::Object(vec![
                                    ("phase".into(), Json::Str(p.phase.into())),
                                    (
                                        "wall_ms".into(),
                                        Json::Float((p.wall_ms * 1e3).round() / 1e3),
                                    ),
                                    ("reports".into(), Json::Int(p.reports as i64)),
                                    (
                                        "functions_rechecked".into(),
                                        Json::Int(p.functions_rechecked as i64),
                                    ),
                                    (
                                        "components_rechecked".into(),
                                        Json::Int(p.components_rechecked as i64),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "warm_speedup".into(),
                    Json::Float((warm_speedup * 10.0).round() / 10.0),
                ),
                (
                    "one_dirty_speedup".into(),
                    Json::Float((one_dirty_speedup * 10.0).round() / 10.0),
                ),
            ]),
        ),
        (
            "interproc".into(),
            Json::Object(vec![
                ("workers".into(), Json::Int(ip.workers as i64)),
                (
                    "wall_ms_off".into(),
                    Json::Float((ip.wall_ms_off * 1e3).round() / 1e3),
                ),
                (
                    "wall_ms_on".into(),
                    Json::Float((ip.wall_ms_on * 1e3).round() / 1e3),
                ),
                (
                    "overhead".into(),
                    Json::Float(((ip.wall_ms_on / ip.wall_ms_off) * 100.0).round() / 100.0),
                ),
                ("reports_off".into(), Json::Int(ip.reports_off as i64)),
                ("reports_on".into(), Json::Int(ip.reports_on as i64)),
                (
                    "summaries_computed".into(),
                    Json::Int(ip.summaries_computed as i64),
                ),
                (
                    "call_sites_resolved".into(),
                    Json::Int(ip.call_sites_resolved as i64),
                ),
            ]),
        ),
        (
            "refutation".into(),
            Json::Object(vec![
                ("workers".into(), Json::Int(rb.workers as i64)),
                (
                    "wall_ms_off".into(),
                    Json::Float((rb.wall_ms_off * 1e3).round() / 1e3),
                ),
                (
                    "wall_ms_on".into(),
                    Json::Float((rb.wall_ms_on * 1e3).round() / 1e3),
                ),
                (
                    "overhead".into(),
                    Json::Float(((rb.wall_ms_on / rb.wall_ms_off) * 100.0).round() / 100.0),
                ),
                ("reports_total".into(), Json::Int(rb.reports_total as i64)),
                (
                    "reports_refuted".into(),
                    Json::Int(rb.reports_refuted as i64),
                ),
            ]),
        ),
        (
            "metal_dispatch".into(),
            Json::Object(vec![
                ("functions".into(), Json::Int(md.functions as i64)),
                (
                    "wall_ms_interp".into(),
                    Json::Float((md.wall_ms_interp * 1e3).round() / 1e3),
                ),
                (
                    "wall_ms_compiled".into(),
                    Json::Float((md.wall_ms_compiled * 1e3).round() / 1e3),
                ),
                (
                    "attempts_interp".into(),
                    Json::Int(md.attempts_interp as i64),
                ),
                (
                    "attempts_compiled".into(),
                    Json::Int(md.attempts_compiled as i64),
                ),
                ("candidates".into(), Json::Int(md.candidates as i64)),
                ("reports".into(), Json::Int(md.reports as i64)),
                (
                    "speedup".into(),
                    Json::Float((md.speedup * 100.0).round() / 100.0),
                ),
            ]),
        ),
        (
            "scale".into(),
            Json::Object(vec![
                ("scale".into(), Json::Int(sc.scale as i64)),
                ("protocols".into(), Json::Int(sc.protocols as i64)),
                ("functions".into(), Json::Int(sc.functions as i64)),
                ("loc".into(), Json::Int(sc.loc as i64)),
                (
                    "gen_ms".into(),
                    Json::Float((sc.gen_ms * 1e3).round() / 1e3),
                ),
                (
                    "cold_check_ms".into(),
                    Json::Float((sc.check_ms * 1e3).round() / 1e3),
                ),
                ("reports".into(), Json::Int(sc.reports as i64)),
            ]),
        ),
        (
            "scheduler".into(),
            Json::Object(vec![
                ("workers".into(), Json::Int(sb.workers as i64)),
                ("corpus_scale".into(), Json::Int(SCALE as i64)),
                (
                    "wall_ms_fixed".into(),
                    Json::Float((sb.wall_ms_fixed * 1e3).round() / 1e3),
                ),
                (
                    "wall_ms_stealing".into(),
                    Json::Float((sb.wall_ms_stealing * 1e3).round() / 1e3),
                ),
                (
                    "speedup".into(),
                    Json::Float((sb.speedup * 100.0).round() / 100.0),
                ),
                ("pools".into(), Json::Int(sb.stats.pools as i64)),
                ("tasks".into(), Json::Int(sb.stats.tasks as i64)),
                ("steals".into(), Json::Int(sb.stats.steals as i64)),
                (
                    "steal_attempts".into(),
                    Json::Int(sb.stats.steal_attempts as i64),
                ),
                ("idle_ns".into(), Json::Int(sb.stats.idle_ns as i64)),
                (
                    "tasks_per_worker".into(),
                    Json::Array(
                        sb.stats
                            .tasks_per_worker
                            .iter()
                            .map(|&t| Json::Int(t as i64))
                            .collect(),
                    ),
                ),
                (
                    "note".into(),
                    Json::Str(if avail < SCHED_WORKERS {
                        format!(
                            "{avail} core(s) available: fixed-vs-stealing parity expected; \
                             the steal counters document scheduler activity"
                        )
                    } else {
                        "stealing vs fixed measured at full parallelism".into()
                    }),
                ),
            ]),
        ),
    ]);
    std::fs::write(&out, json.to_pretty()).expect("write BENCH_driver.json");
    println!("wrote {out}");
}
