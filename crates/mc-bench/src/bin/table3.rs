//! Table 3 — the message length consistency checker (Figure 3).

use mc_bench::{applied, jobs_from_args, pm, row, run_all_protocols_with_jobs};

/// Paper values: (errors, false positives, applied).
const PAPER: [(usize, usize, usize); 6] = [
    (3, 0, 205),
    (7, 0, 316),
    (0, 0, 308),
    (0, 2, 302),
    (8, 0, 346),
    (0, 0, 73),
];

fn main() {
    println!("Table 3: message length checker (paper/measured)");
    let widths = [12, 10, 12, 10];
    println!(
        "{}",
        row(
            &["Protocol", "Errors", "False Pos", "Applied"].map(String::from),
            &widths
        )
    );
    let mut totals = (0, 0, 0);
    for (run, paper) in run_all_protocols_with_jobs(jobs_from_args())
        .iter()
        .zip(PAPER)
    {
        let t = run.tally("msglen_check");
        let applied = applied::sends(run);
        totals.0 += t.errors;
        totals.1 += t.false_positives;
        totals.2 += applied;
        println!(
            "{}",
            row(
                &[
                    run.plan.name.to_string(),
                    pm(paper.0, t.errors),
                    pm(paper.1, t.false_positives),
                    pm(paper.2, applied),
                ],
                &widths
            )
        );
    }
    println!(
        "{}",
        row(
            &[
                "total".to_string(),
                pm(18, totals.0),
                pm(2, totals.1),
                pm(1550, totals.2)
            ],
            &widths
        )
    );
}
