//! Table 7 — summary over all protocols: per-checker size, errors found,
//! and false positives. Also covers the §7 lane checker (2 errors, 0 FPs)
//! and the §11 refcount incident.

use mc_bench::{checker_loc, jobs_from_args, pm, row, run_all_protocols_with_jobs};

/// Paper values: (checker, LOC, errors, false positives).
const PAPER: [(&str, usize, usize, usize); 9] = [
    ("buffer_mgmt", 94, 9, 25),
    ("msglen_check", 29, 18, 2),
    ("lanes", 220, 2, 0),
    ("wait_for_db", 12, 4, 1),
    ("alloc_check", 16, 0, 2),
    ("directory", 51, 1, 31),
    ("send_wait", 40, 0, 8),
    ("exec_restrict", 84, 0, 0),
    ("refcount_bump", 7, 0, 0),
];

fn main() {
    println!("Table 7: checker summary over all protocols (paper/measured)");
    let runs = run_all_protocols_with_jobs(jobs_from_args());
    let locs = checker_loc();
    let widths = [16, 12, 10, 12];
    println!(
        "{}",
        row(
            &["Checker", "LOC", "Err", "False Pos"].map(String::from),
            &widths
        )
    );
    let mut total_err = 0;
    let mut total_fp = 0;
    for (name, paper_loc, paper_err, paper_fp) in PAPER {
        let loc = locs
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, l)| *l)
            .unwrap_or(0);
        let mut err = 0;
        let mut fp = 0;
        for run in &runs {
            let t = run.tally(name);
            err += t.errors;
            fp += t.false_positives;
        }
        // The paper's Table 7 counts the 11 execution-restriction hook
        // omissions in Table 5 only, and the refcount incident in §11;
        // keep its convention for comparability.
        let (err, fp) = if name == "exec_restrict" || name == "refcount_bump" {
            (0, 0)
        } else {
            (err, fp)
        };
        total_err += err;
        total_fp += fp;
        println!(
            "{}",
            row(
                &[
                    name.to_string(),
                    pm(paper_loc, loc),
                    pm(paper_err, err),
                    pm(paper_fp, fp),
                ],
                &widths
            )
        );
    }
    println!(
        "{}",
        row(
            &[
                "total".to_string(),
                "553/-".to_string(),
                pm(34, total_err),
                pm(69, total_fp)
            ],
            &widths
        )
    );
    println!("\n(Table 7 totals follow the paper's convention: hook omissions are");
    println!(" accounted in Table 5, the refcount incident in §11.)");
}
