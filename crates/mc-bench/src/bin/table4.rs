//! Table 4 — the buffer management checker.

use mc_bench::{jobs_from_args, pm, row, run_all_protocols_with_jobs};

/// Paper values: (errors, minor, useful annotations, useless annotations).
const PAPER: [(usize, usize, usize, usize); 6] = [
    (2, 1, 0, 1), // bitvector
    (2, 2, 3, 3), // dyn_ptr
    (3, 2, 10, 10),
    (0, 0, 0, 0),
    (2, 0, 2, 4),
    (0, 1, 3, 7),
];

fn main() {
    println!("Table 4: buffer management checker (paper/measured)");
    let widths = [12, 10, 9, 10, 10];
    println!(
        "{}",
        row(
            &["Protocol", "Errors", "Minor", "Useful", "Useless"].map(String::from),
            &widths
        )
    );
    let mut totals = (0, 0, 0, 0);
    for (run, paper) in run_all_protocols_with_jobs(jobs_from_args())
        .iter()
        .zip(PAPER)
    {
        let t = run.tally("buffer_mgmt");
        let useful = run.annotations();
        totals.0 += t.errors;
        totals.1 += t.minor;
        totals.2 += useful;
        totals.3 += t.false_positives;
        println!(
            "{}",
            row(
                &[
                    run.plan.name.to_string(),
                    pm(paper.0, t.errors),
                    pm(paper.1, t.minor),
                    pm(paper.2, useful),
                    pm(paper.3, t.false_positives),
                ],
                &widths
            )
        );
    }
    println!(
        "{}",
        row(
            &[
                "total".to_string(),
                pm(9, totals.0),
                pm(6, totals.1),
                pm(18, totals.2),
                pm(25, totals.3)
            ],
            &widths
        )
    );
}
