//! Table 1 — protocol size: LOC, number of paths, average/max path length.

use mc_bench::{jobs_from_args, pm, row, run_all_protocols_with_jobs};

fn main() {
    println!("Table 1: protocol size (paper/measured)");
    let widths = [12, 16, 14, 16, 14];
    println!(
        "{}",
        row(
            &[
                "Protocol",
                "LOC",
                "# of paths",
                "avg path len",
                "max path len"
            ]
            .map(String::from),
            &widths
        )
    );
    let mut total_loc = 0usize;
    for run in run_all_protocols_with_jobs(jobs_from_args()) {
        let stats = run.path_stats();
        total_loc += run.loc();
        println!(
            "{}",
            row(
                &[
                    run.plan.name.to_string(),
                    pm(run.plan.loc, run.loc()),
                    pm(run.plan.paths, stats.paths),
                    pm(run.plan.avg_path_len, format!("{:.0}", stats.avg_len())),
                    pm(run.plan.max_path_len, stats.max_len),
                ],
                &widths
            )
        );
    }
    println!("\ntotal measured LOC: {total_loc}");
}
