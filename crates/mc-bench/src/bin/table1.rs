//! Table 1 — protocol size: LOC, number of paths, average/max path length.

use mc_bench::{jobs_from_args, pm, row, run_all_protocols_with_jobs};

/// Paper values: (LOC, paths, avg path length, max path length).
const PAPER: [(usize, u64, u64, u64); 6] = [
    (10386, 486, 87, 563),
    (18438, 2322, 135, 399),
    (11473, 1051, 73, 330),
    (17031, 1131, 135, 244),
    (14396, 1364, 133, 516),
    (8783, 1165, 183, 461),
];

fn main() {
    println!("Table 1: protocol size (paper/measured)");
    let widths = [12, 16, 14, 16, 14];
    println!(
        "{}",
        row(
            &[
                "Protocol",
                "LOC",
                "# of paths",
                "avg path len",
                "max path len"
            ]
            .map(String::from),
            &widths
        )
    );
    let mut total_loc = 0usize;
    for (run, paper) in run_all_protocols_with_jobs(jobs_from_args())
        .iter()
        .zip(PAPER)
    {
        let stats = run.path_stats();
        total_loc += run.loc();
        println!(
            "{}",
            row(
                &[
                    run.plan.name.to_string(),
                    pm(paper.0, run.loc()),
                    pm(paper.1, stats.paths),
                    pm(paper.2, format!("{:.0}", stats.avg_len())),
                    pm(paper.3, stats.max_len),
                ],
                &widths
            )
        );
    }
    println!("\ntotal measured LOC: {total_loc}");
}
