//! False-positive delta: the full suite run twice — with path-feasibility
//! pruning off (the paper's xg++) and on (the `mcheck` default) — showing
//! per-protocol and per-checker false-positive counts before/after, that
//! every planted bug survives pruning, and how confidence ranking
//! separates bugs from the false positives that remain.

use mc_bench::{jobs_from_args, row, run_all_protocols_with};
use mc_corpus::PlantedKind;
use mc_driver::Report;

fn main() {
    let jobs = jobs_from_args();
    let unpruned = run_all_protocols_with(jobs, false);
    let pruned = run_all_protocols_with(jobs, true);

    println!("False-positive delta: pruning off (paper) vs on (default)");
    let widths = [12, 10, 10, 10, 12, 12];
    println!(
        "{}",
        row(
            &["Protocol", "FP off", "FP on", "removed", "bugs off", "bugs on"].map(String::from),
            &widths
        )
    );
    let mut tot = [0usize; 4];
    for (off, on) in unpruned.iter().zip(&pruned) {
        let fp_off = off.outcome.reports_of("", PlantedKind::FalsePositive);
        let fp_on = on.outcome.reports_of("", PlantedKind::FalsePositive);
        let bugs_off = off.outcome.reports_of("", PlantedKind::Bug)
            + off.outcome.reports_of("", PlantedKind::Incident);
        let bugs_on = on.outcome.reports_of("", PlantedKind::Bug)
            + on.outcome.reports_of("", PlantedKind::Incident);
        assert_eq!(
            bugs_off, bugs_on,
            "{}: pruning dropped a bug",
            off.plan.name
        );
        tot[0] += fp_off;
        tot[1] += fp_on;
        tot[2] += bugs_off;
        tot[3] += bugs_on;
        println!(
            "{}",
            row(
                &[
                    off.plan.name.to_string(),
                    fp_off.to_string(),
                    fp_on.to_string(),
                    (fp_off - fp_on).to_string(),
                    bugs_off.to_string(),
                    bugs_on.to_string(),
                ],
                &widths
            )
        );
    }
    println!(
        "{}",
        row(
            &[
                "total".into(),
                tot[0].to_string(),
                tot[1].to_string(),
                (tot[0] - tot[1]).to_string(),
                tot[2].to_string(),
                tot[3].to_string(),
            ],
            &widths
        )
    );

    // Confidence separation in the pruned (default) run: reports that
    // match planted bugs should rank above reports that match planted
    // false positives.
    let mut bug_conf: Vec<u8> = Vec::new();
    let mut fp_conf: Vec<u8> = Vec::new();
    for run in &pruned {
        for planted in &run.protocol.manifest {
            for r in run
                .reports
                .iter()
                .filter(|r| r.checker == planted.checker && r.function == planted.function)
            {
                match planted.kind {
                    PlantedKind::Bug | PlantedKind::Incident => bug_conf.push(r.confidence),
                    PlantedKind::FalsePositive => fp_conf.push(r.confidence),
                    _ => {}
                }
            }
        }
    }
    let mean = |v: &[u8]| v.iter().map(|&c| c as f64).sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nconfidence (0-100, default {}): planted bugs mean {:.1} ({} reports), \
         surviving false positives mean {:.1} ({} reports)",
        Report::DEFAULT_CONFIDENCE,
        mean(&bug_conf),
        bug_conf.len(),
        mean(&fp_conf),
        fp_conf.len()
    );
}
