//! False-positive delta: the full suite run four ways — path-feasibility
//! pruning off (the paper's xg++), pruning on (the `mcheck` default),
//! pruning plus summary-based call-site resolution (`mcheck --interproc`),
//! and all of that plus the symbolic refutation pass (`mcheck --refute`)
//! — showing per-protocol false-positive counts at each rung, that every
//! planted bug survives all three analyses, and how confidence ranking
//! separates bugs from the false positives that remain.
//!
//! The final `gate:` line is machine-readable and consumed by
//! `scripts/fp_gate.sh`, the CI regression gate: bug recall and the
//! false-positive counts must never regress past the committed baseline.

use mc_bench::{
    jobs_from_args, row, run_all_protocols_full, run_all_protocols_refuted, ProtocolRun,
};
use mc_corpus::PlantedKind;
use mc_driver::Report;
use std::collections::BTreeMap;

fn bugs(run: &ProtocolRun) -> usize {
    run.outcome.reports_of("", PlantedKind::Bug) + run.outcome.reports_of("", PlantedKind::Incident)
}

/// Names the reports present in `before` but not `after` (and vice versa)
/// by fingerprint, so a gate failure says exactly *which* reports moved
/// instead of only that a count changed.
fn fp_delta_lines(before: &[Report], after: &[Report]) -> String {
    let describe = |r: &Report| {
        format!(
            "  {} [{}] {}:{} {} (in {})",
            r.fingerprint(),
            r.checker,
            r.file,
            r.span,
            r.message,
            r.function
        )
    };
    let fps = |v: &[Report]| -> std::collections::BTreeSet<String> {
        v.iter().map(Report::fingerprint).collect()
    };
    let (before_fps, after_fps) = (fps(before), fps(after));
    let gone: Vec<String> = before
        .iter()
        .filter(|r| !after_fps.contains(&r.fingerprint()))
        .map(describe)
        .collect();
    let new: Vec<String> = after
        .iter()
        .filter(|r| !before_fps.contains(&r.fingerprint()))
        .map(describe)
        .collect();
    let mut out = String::new();
    if !gone.is_empty() {
        out.push_str(&format!(
            "disappeared ({}):\n{}\n",
            gone.len(),
            gone.join("\n")
        ));
    }
    if !new.is_empty() {
        out.push_str(&format!("appeared ({}):\n{}\n", new.len(), new.join("\n")));
    }
    if out.is_empty() {
        out.push_str("  (no per-report fingerprint delta: counts moved within matching content)\n");
    }
    out
}

fn main() {
    let jobs = jobs_from_args();
    let unpruned = run_all_protocols_full(jobs, false, false);
    let pruned = run_all_protocols_full(jobs, true, false);
    let interproc = run_all_protocols_full(jobs, true, true);
    let refuted = run_all_protocols_refuted(jobs, true, true, true);

    println!(
        "False-positive delta: pruning off (paper) / on (default) / \
         on + --interproc / on + --interproc --refute"
    );
    let widths = [12, 10, 10, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &["Protocol", "FP off", "FP on", "FP ip", "FP rf", "bugs off", "bugs rf"]
                .map(String::from),
            &widths
        )
    );
    let mut tot = [0usize; 6];
    for (((off, on), ip), rf) in unpruned.iter().zip(&pruned).zip(&interproc).zip(&refuted) {
        let fp_off = off.outcome.reports_of("", PlantedKind::FalsePositive);
        let fp_on = on.outcome.reports_of("", PlantedKind::FalsePositive);
        let fp_ip = ip.outcome.reports_of("", PlantedKind::FalsePositive);
        let fp_rf = rf.outcome.reports_of("", PlantedKind::FalsePositive);
        let bugs_off = bugs(off);
        assert_eq!(
            bugs_off,
            bugs(on),
            "{}: pruning dropped a bug\n{}",
            off.plan.name,
            fp_delta_lines(&off.reports, &on.reports)
        );
        assert_eq!(
            bugs_off,
            bugs(ip),
            "{}: call-site resolution dropped a bug\n{}",
            off.plan.name,
            fp_delta_lines(&off.reports, &ip.reports)
        );
        let rf_kept: Vec<Report> = rf.kept_reports().cloned().collect();
        assert_eq!(
            bugs_off,
            bugs(rf),
            "{}: symbolic refutation dropped a bug\n{}",
            off.plan.name,
            fp_delta_lines(&off.reports, &rf_kept)
        );
        assert!(
            fp_ip <= fp_on,
            "{}: call-site resolution added false positives\n{}",
            off.plan.name,
            fp_delta_lines(&on.reports, &ip.reports)
        );
        assert!(
            fp_rf <= fp_ip,
            "{}: symbolic refutation added false positives\n{}",
            off.plan.name,
            fp_delta_lines(&ip.reports, &rf_kept)
        );
        tot[0] += fp_off;
        tot[1] += fp_on;
        tot[2] += fp_ip;
        tot[3] += fp_rf;
        tot[4] += bugs_off;
        tot[5] += bugs(rf);
        println!(
            "{}",
            row(
                &[
                    off.plan.name.to_string(),
                    fp_off.to_string(),
                    fp_on.to_string(),
                    fp_ip.to_string(),
                    fp_rf.to_string(),
                    bugs_off.to_string(),
                    bugs(rf).to_string(),
                ],
                &widths
            )
        );
    }
    println!(
        "{}",
        row(
            &[
                "total".into(),
                tot[0].to_string(),
                tot[1].to_string(),
                tot[2].to_string(),
                tot[3].to_string(),
                tot[4].to_string(),
                tot[5].to_string(),
            ],
            &widths
        )
    );

    // Per-checker × per-rung inventory: which checker's false positives
    // each analysis removes. Rows are checkers with at least one planted
    // false positive; columns are the four gated rungs.
    println!("\nFalse positives by checker and rung:");
    let cw = [14, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &["Checker", "FP off", "FP on", "FP ip", "FP rf"].map(String::from),
            &cw
        )
    );
    let mut by_checker: BTreeMap<String, [usize; 4]> = BTreeMap::new();
    for (slot, runs) in [&unpruned, &pruned, &interproc, &refuted]
        .into_iter()
        .enumerate()
    {
        for run in runs.iter() {
            for (planted, n) in &run.outcome.matched {
                if planted.kind == PlantedKind::FalsePositive {
                    by_checker.entry(planted.checker.clone()).or_insert([0; 4])[slot] += n;
                }
            }
        }
    }
    for (checker, counts) in &by_checker {
        println!(
            "{}",
            row(
                &[
                    checker.to_string(),
                    counts[0].to_string(),
                    counts[1].to_string(),
                    counts[2].to_string(),
                    counts[3].to_string(),
                ],
                &cw
            )
        );
    }

    // Confidence separation in the pruned (default) run: reports that
    // match planted bugs should rank above reports that match planted
    // false positives.
    let mut bug_conf: Vec<u8> = Vec::new();
    let mut fp_conf: Vec<u8> = Vec::new();
    for run in &pruned {
        for planted in &run.protocol.manifest {
            for r in run
                .reports
                .iter()
                .filter(|r| r.checker == planted.checker && r.function == planted.function)
            {
                match planted.kind {
                    PlantedKind::Bug | PlantedKind::Incident => bug_conf.push(r.confidence),
                    PlantedKind::FalsePositive => fp_conf.push(r.confidence),
                    _ => {}
                }
            }
        }
    }
    let mean = |v: &[u8]| v.iter().map(|&c| c as f64).sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nconfidence (0-100, default {}): planted bugs mean {:.1} ({} reports), \
         surviving false positives mean {:.1} ({} reports)",
        Report::DEFAULT_CONFIDENCE,
        mean(&bug_conf),
        bug_conf.len(),
        mean(&fp_conf),
        fp_conf.len()
    );

    // Machine-readable summary for the CI regression gate.
    println!(
        "\ngate: bugs={} fp_pruned={} fp_interproc={} fp_refute={}",
        tot[4], tot[1], tot[2], tot[3]
    );

    // Per-report inventory keyed by fingerprint: one line per surviving
    // false-positive report at each gated rung. scripts/fp_gate.sh diffs
    // these lines against the committed baseline when a count regresses,
    // so a CI failure names the exact reports that appeared or
    // disappeared instead of only the count that moved. At the refute
    // rung only the reports the pass could not demote are listed.
    for (tag, runs) in [
        ("pruned", &pruned),
        ("interproc", &interproc),
        ("refute", &refuted),
    ] {
        let mut lines: Vec<String> = Vec::new();
        for run in runs.iter() {
            for planted in &run.protocol.manifest {
                if planted.kind != PlantedKind::FalsePositive {
                    continue;
                }
                for r in run
                    .kept_reports()
                    .filter(|r| r.checker == planted.checker && r.function == planted.function)
                {
                    lines.push(format!(
                        "fp[{tag}] {} [{}] {} (in {}): {}",
                        r.fingerprint(),
                        r.checker,
                        r.file,
                        r.function,
                        r.message
                    ));
                }
            }
        }
        lines.sort();
        for line in lines {
            println!("{line}");
        }
    }
}
