//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! 1. **State-set worklist vs. exhaustive path enumeration.** The paper
//!    applies SMs "down every path"; with `k` sequential branches a
//!    function has `2^k` paths, so exhaustive walking explodes while the
//!    state-set worklist stays linear (same reports for finite-state
//!    checkers).
//! 2. **Pattern indexing.** Pre-filtering patterns by required identifiers
//!    vs. structurally comparing every pattern at every node.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc_ast::parse_translation_unit;
use mc_cfg::{run_machine, Cfg, Mode};
use mc_corpus::{generate, plan::plan_for, DEFAULT_SEED};
use mc_metal::{MetalMachine, MetalProgram};
use std::hint::black_box;

/// A handler with `k` sequential condition-dependent frees — `2^k` paths.
fn branchy_source(k: usize) -> String {
    let mut body = String::new();
    for i in 0..k {
        body.push_str(&format!(
            "if (c{i}) {{ t = t + {i}; }} else {{ t = t - {i}; }}\n"
        ));
    }
    format!("void NIBranchy(void) {{ int t = 0; {body} MISCBUS_READ_DB(a, b); }}")
}

const SM: &str = r#"
    sm wait_for_db {
        decl { scalar } addr, buf;
        start:
            { WAIT_FOR_DB_FULL(addr); } ==> stop
          | { MISCBUS_READ_DB(addr, buf); } ==> { err("Buffer not synchronized"); }
        ;
    }
"#;

fn bench_traversal_modes(c: &mut Criterion) {
    let prog = MetalProgram::parse(SM).unwrap();
    let mut g = c.benchmark_group("traversal");
    for k in [4usize, 8, 12, 16] {
        let src = branchy_source(k);
        let tu = parse_translation_unit(&src, "b.c").unwrap();
        let cfg = Cfg::build(tu.function("NIBranchy").unwrap());
        g.bench_with_input(BenchmarkId::new("state_set", k), &k, |b, _| {
            b.iter(|| {
                let mut m = MetalMachine::new(&prog);
                let init = m.start_state();
                run_machine(black_box(&cfg), &mut m, init, Mode::StateSet);
                m.reports.len()
            })
        });
        g.bench_with_input(BenchmarkId::new("exhaustive", k), &k, |b, _| {
            b.iter(|| {
                let mut m = MetalMachine::new(&prog);
                let init = m.start_state();
                run_machine(
                    black_box(&cfg),
                    &mut m,
                    init,
                    Mode::Exhaustive {
                        max_paths: 1_000_000,
                    },
                );
                m.reports.len()
            })
        });
    }
    g.finish();
}

fn bench_pattern_index(c: &mut Criterion) {
    let proto = generate(plan_for("bitvector").unwrap(), DEFAULT_SEED);
    let units: Vec<_> = proto
        .files
        .iter()
        .map(|f| parse_translation_unit(&f.source, &f.name).unwrap())
        .collect();
    let prog = MetalProgram::parse(mc_checkers::MSGLEN_METAL).unwrap();
    let mut g = c.benchmark_group("pattern_index");
    g.sample_size(20);
    for (label, use_index) in [("indexed", true), ("linear", false)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut total = 0usize;
                for u in &units {
                    for f in u.functions() {
                        let cfg = Cfg::build(f);
                        let mut m = MetalMachine::new(&prog);
                        m.use_index = use_index;
                        let init = m.start_state();
                        run_machine(&cfg, &mut m, init, Mode::StateSet);
                        total += m.reports.len();
                    }
                }
                total
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_traversal_modes, bench_pattern_index);
criterion_main!(benches);
