//! Criterion benchmarks of the framework: front end, CFG construction,
//! each checker end-to-end over a full protocol, and simulator throughput.
//!
//! The paper's pitch is that MC checking is cheap enough to run like a
//! compiler pass; these benches quantify that for this implementation.

use criterion::{criterion_group, criterion_main, Criterion};
use mc_ast::parse_translation_unit;
use mc_cfg::Cfg;
use mc_checkers::{
    alloc_check::AllocCheck, buffer_mgmt::BufferMgmt, directory::Directory,
    exec_restrict::ExecRestrict, lanes::Lanes, send_wait::SendWait,
};
use mc_corpus::{generate, plan::plan_for, DEFAULT_SEED};
use mc_driver::{CheckSink, CheckedUnit, Checker, Driver, FunctionContext};
use mc_sim::{Machine, Program, SimConfig};
use std::hint::black_box;

fn bitvector() -> mc_corpus::Protocol {
    generate(plan_for("bitvector").unwrap(), DEFAULT_SEED)
}

fn bench_parse(c: &mut Criterion) {
    let proto = bitvector();
    let biggest = proto
        .files
        .iter()
        .max_by_key(|f| f.source.len())
        .unwrap()
        .clone();
    let bytes = biggest.source.len();
    let mut g = c.benchmark_group("frontend");
    g.throughput(criterion::Throughput::Bytes(bytes as u64));
    g.bench_function("parse_protocol_file", |b| {
        b.iter(|| parse_translation_unit(black_box(&biggest.source), &biggest.name).unwrap())
    });
    g.finish();
}

fn bench_cfg(c: &mut Criterion) {
    let proto = bitvector();
    let units: Vec<_> = proto
        .files
        .iter()
        .map(|f| parse_translation_unit(&f.source, &f.name).unwrap())
        .collect();
    c.bench_function("cfg/build_all_functions", |b| {
        b.iter(|| {
            let mut blocks = 0usize;
            for u in &units {
                for f in u.functions() {
                    blocks += Cfg::build(black_box(f)).blocks.len();
                }
            }
            blocks
        })
    });
    c.bench_function("cfg/path_stats_all_functions", |b| {
        b.iter(|| {
            let mut paths = 0u64;
            for u in &units {
                for f in u.functions() {
                    paths += Cfg::build(f).path_stats().paths;
                }
            }
            paths
        })
    });
}

fn bench_checkers(c: &mut Criterion) {
    let proto = bitvector();
    let units: Vec<CheckedUnit> = proto
        .files
        .iter()
        .map(|f| CheckedUnit::new(parse_translation_unit(&f.source, &f.name).unwrap()))
        .collect();
    let spec = proto.spec.clone();
    let mut g = c.benchmark_group("checker");
    g.sample_size(20);

    // The two metal checkers, via the driver.
    for (label, src) in [
        ("wait_for_db", mc_checkers::WAIT_FOR_DB_METAL),
        ("msglen", mc_checkers::MSGLEN_METAL),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut d = Driver::new();
                d.add_metal_source(src).unwrap();
                d.check_units(black_box(&units)).len()
            })
        });
    }

    // Native checkers, applied function by function over the cached CFGs.
    fn run_native(units: &[CheckedUnit], checker: Box<dyn Checker>) -> usize {
        let mut sink = CheckSink::new();
        for u in units {
            for (f, cfg) in u.functions() {
                let ctx = FunctionContext {
                    file: &u.unit.file,
                    unit: &u.unit,
                    function: f,
                    cfg,
                    traversal: mc_cfg::Traversal::default(),
                    summaries: None,
                };
                checker.check_function(&ctx, &mut sink);
            }
        }
        sink.len()
    }
    g.bench_function("buffer_mgmt", |b| {
        b.iter(|| run_native(&units, Box::new(BufferMgmt::new(spec.clone()))))
    });
    g.bench_function("exec_restrict", |b| {
        b.iter(|| run_native(&units, Box::new(ExecRestrict::new(spec.clone()))))
    });
    g.bench_function("alloc_check", |b| {
        b.iter(|| run_native(&units, Box::new(AllocCheck::new())))
    });
    g.bench_function("directory", |b| {
        b.iter(|| run_native(&units, Box::new(Directory::new(spec.clone()))))
    });
    g.bench_function("send_wait", |b| {
        b.iter(|| run_native(&units, Box::new(SendWait::new())))
    });
    g.bench_function("lanes_interprocedural", |b| {
        b.iter(|| {
            let mut d = Driver::new();
            d.add_checker(Box::new(Lanes::new(spec.clone())));
            d.check_units(black_box(&units)).len()
        })
    });
    g.finish();

    let mut g = c.benchmark_group("suite");
    g.sample_size(10);
    g.bench_function("all_checkers_bitvector", |b| {
        b.iter(|| {
            let mut d = Driver::new();
            mc_checkers::all_checkers(&mut d, &spec).unwrap();
            d.check_units(black_box(&units)).len()
        })
    });
    g.finish();
}

fn bench_sim(c: &mut Criterion) {
    let src = r#"
        void NIBench(void) {
            HANDLER_DEFS();
            HANDLER_PROLOGUE();
            WAIT_FOR_DB_FULL(addr);
            gSum = gSum + MISCBUS_READ_DB(addr, 0);
            DIR_LOAD();
            if (DIR_STATE() == DIR_IDLE) {
                DIR_SET_STATE(DIR_SHARED);
            }
            DIR_WRITEBACK();
            HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
            NI_SEND(MSG_REPLY, F_DATA, 1, W_NOWAIT, 1, 0);
            DB_FREE();
        }
    "#;
    let program = Program::parse(src).unwrap();
    let mut g = c.benchmark_group("sim");
    g.throughput(criterion::Throughput::Elements(1000));
    g.bench_function("handler_runs_per_sec", |b| {
        b.iter(|| {
            let mut m = Machine::new(
                program.clone(),
                SimConfig {
                    lane_capacity: 4096,
                    max_handler_runs: 5000,
                    ..Default::default()
                },
            );
            for _ in 0..1000 {
                m.inject(0, "NIBench");
            }
            m.run();
            m.handler_runs()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_parse, bench_cfg, bench_checkers, bench_sim);
criterion_main!(benches);
