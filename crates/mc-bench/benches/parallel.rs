//! Driver throughput at 1/2/4/8 workers over the full generated corpus.
//!
//! The work fanned out is the whole check pipeline — parsing, CFG
//! construction, metal machines, native checkers — and the merged report
//! vector is identical at every worker count (asserted here), so the only
//! thing that may vary between bars is wall time.
//!
//! `cargo run --release -p mc-bench --bin perf` runs the same comparison
//! outside the criterion harness and writes `BENCH_driver.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mc_checkers::all_checkers;
use mc_corpus::plan::PLANS;
use mc_corpus::{generate, Protocol, DEFAULT_SEED};
use mc_driver::Driver;
use std::hint::black_box;

fn corpus() -> Vec<Protocol> {
    PLANS
        .iter()
        .enumerate()
        .map(|(i, plan)| generate(plan, DEFAULT_SEED.wrapping_add(i as u64)))
        .collect()
}

fn check_corpus(protocols: &[Protocol], jobs: usize) -> usize {
    let mut reports = 0;
    for proto in protocols {
        let mut driver = Driver::new();
        driver.jobs(jobs);
        all_checkers(&mut driver, &proto.spec).expect("suite registers");
        let units = driver.parse_units(&proto.sources()).expect("corpus parses");
        reports += driver.check_units(&units).len();
    }
    reports
}

fn bench_worker_counts(c: &mut Criterion) {
    let protocols = corpus();
    let functions: usize = {
        let driver = Driver::new();
        protocols
            .iter()
            .map(|p| {
                driver
                    .parse_units(&p.sources())
                    .expect("corpus parses")
                    .iter()
                    .map(|u| u.cfgs.len())
                    .sum::<usize>()
            })
            .sum()
    };
    let baseline = check_corpus(&protocols, 1);
    let mut g = c.benchmark_group("driver_jobs");
    g.throughput(Throughput::Elements(functions as u64));
    g.sample_size(10);
    for jobs in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let reports = check_corpus(black_box(&protocols), jobs);
                assert_eq!(reports, baseline, "report count changed at jobs={jobs}");
                reports
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_worker_counts);
criterion_main!(benches);
