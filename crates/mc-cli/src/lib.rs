//! # mc-cli
//!
//! Library backing the `mcheck` command-line tool: argument parsing and
//! the run logic, factored out of `main` so it can be tested.
//!
//! ```text
//! mcheck [OPTIONS] <file.c>...
//!
//!   --checker <file.metal>   add a metal checker (repeatable)
//!   --builtin                add the full built-in FLASH suite
//!   --spec <spec.json>       FlashSpec tables for the native checkers
//!   --mode <state-set|exhaustive>
//!   --jobs <n>               worker threads (default: available parallelism)
//!   --prune / --no-prune     path-feasibility pruning (default on)
//!   --emit-corpus <dir>      write the synthetic FLASH corpus and exit
//!   --seed <n>               corpus seed (default 0xF1A5)
//! ```

#![warn(missing_docs)]

use mc_checkers::flash::FlashSpec;
use mc_driver::{Driver, Report};
use std::fmt;
use std::path::PathBuf;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Metal checker files to load.
    pub checkers: Vec<PathBuf>,
    /// Whether to register the built-in FLASH suite.
    pub builtin: bool,
    /// Optional FlashSpec JSON path.
    pub spec: Option<PathBuf>,
    /// Use exhaustive traversal instead of the state-set worklist.
    pub exhaustive: bool,
    /// Worker threads for parsing and checking (`None`: available
    /// parallelism). Reports are identical at any worker count.
    pub jobs: Option<usize>,
    /// Path-feasibility pruning (`--no-prune` turns it off, reproducing
    /// the paper's unpruned xg++ behaviour).
    pub prune: bool,
    /// Write the corpus to this directory instead of checking.
    pub emit_corpus: Option<PathBuf>,
    /// Corpus seed.
    pub seed: u64,
    /// Emit reports as a JSON array instead of text.
    pub json: bool,
    /// C sources to check.
    pub files: Vec<PathBuf>,
}

/// The documented defaults: pruning on, the stock corpus seed. Derived
/// `Default` would give `prune: false` and silently hand programmatic
/// callers the paper's unpruned behaviour.
impl Default for Options {
    fn default() -> Options {
        Options {
            checkers: Vec::new(),
            builtin: false,
            spec: None,
            exhaustive: false,
            jobs: None,
            prune: true,
            emit_corpus: None,
            seed: mc_corpus::DEFAULT_SEED,
            json: false,
            files: Vec::new(),
        }
    }
}

/// A CLI usage or I/O error.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mcheck: {}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text printed on `--help` or bad arguments.
pub const USAGE: &str = "\
usage: mcheck [OPTIONS] <file.c>...
  --checker <file.metal>   add a metal checker (repeatable)
  --builtin                add the built-in FLASH checker suite
  --spec <spec.json>       FlashSpec tables (handler classes, lane quotas,
                           routine tables) for the native checkers
  --mode <state-set|exhaustive>   path traversal mode (default state-set)
  --jobs <n>               worker threads for parsing and checking
                           (default: available parallelism; output is
                           identical at any worker count)
  --prune / --no-prune     refute paths whose branch conditions contradict
                           each other (default on; --no-prune reproduces
                           the paper's unpruned behaviour)
  --format <text|json>     report output format (default text); reports
                           are ordered most-likely-real first (descending
                           confidence)
  --emit-corpus <dir>      write the synthetic FLASH corpus and exit
  --seed <n>               corpus seed (default 0xF1A5)
  --help                   show this message";

/// Parses arguments (without the program name).
///
/// # Errors
///
/// Returns [`CliError`] on unknown flags, missing values, or a run that
/// would do nothing.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Options, CliError> {
    let mut opts = Options::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--checker" => {
                let v = it.next().ok_or(CliError("--checker needs a file".into()))?;
                opts.checkers.push(PathBuf::from(v));
            }
            "--builtin" => opts.builtin = true,
            "--spec" => {
                let v = it.next().ok_or(CliError("--spec needs a file".into()))?;
                opts.spec = Some(PathBuf::from(v));
            }
            "--mode" => {
                let v = it.next().ok_or(CliError("--mode needs a value".into()))?;
                match v.as_str() {
                    "state-set" => opts.exhaustive = false,
                    "exhaustive" => opts.exhaustive = true,
                    other => {
                        return Err(CliError(format!(
                            "unknown mode `{other}` (state-set | exhaustive)"
                        )))
                    }
                }
            }
            "--jobs" => {
                let v = it.next().ok_or(CliError("--jobs needs a number".into()))?;
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => opts.jobs = Some(n),
                    _ => {
                        return Err(CliError(format!(
                            "--jobs expects a positive integer, got `{v}`"
                        )))
                    }
                }
            }
            "--prune" => opts.prune = true,
            "--no-prune" => opts.prune = false,
            "--format" => {
                let v = it.next().ok_or(CliError("--format needs a value".into()))?;
                match v.as_str() {
                    "text" => opts.json = false,
                    "json" => opts.json = true,
                    other => {
                        return Err(CliError(format!("unknown format `{other}` (text | json)")))
                    }
                }
            }
            "--emit-corpus" => {
                let v = it
                    .next()
                    .ok_or(CliError("--emit-corpus needs a directory".into()))?;
                opts.emit_corpus = Some(PathBuf::from(v));
            }
            "--seed" => {
                let v = it.next().ok_or(CliError("--seed needs a number".into()))?;
                opts.seed =
                    parse_seed(&v).ok_or_else(|| CliError(format!("invalid seed `{v}`")))?;
            }
            "--help" | "-h" => return Err(CliError(USAGE.to_string())),
            other if other.starts_with('-') => {
                return Err(CliError(format!("unknown option `{other}`\n{USAGE}")))
            }
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    if opts.emit_corpus.is_none() {
        if opts.files.is_empty() {
            return Err(CliError(format!("no input files\n{USAGE}")));
        }
        if opts.checkers.is_empty() && !opts.builtin {
            return Err(CliError(
                "nothing to do: pass --checker and/or --builtin".into(),
            ));
        }
    }
    Ok(opts)
}

fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Executes the parsed options. Returns the reports (empty for
/// `--emit-corpus` runs) so `main` can set the exit code.
///
/// # Errors
///
/// Returns [`CliError`] for I/O, parse, or metal errors.
pub fn run(opts: &Options) -> Result<Vec<Report>, CliError> {
    if let Some(dir) = &opts.emit_corpus {
        emit_corpus(dir, opts.seed)?;
        return Ok(Vec::new());
    }

    let spec = match &opts.spec {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
            mc_json::from_str::<FlashSpec>(&text)
                .map_err(|e| CliError(format!("{}: {e}", path.display())))?
        }
        None => FlashSpec::new(),
    };

    let mut driver = Driver::new();
    if opts.exhaustive {
        driver.mode = mc_cfg_mode_exhaustive();
    }
    driver.prune(opts.prune);
    if let Some(n) = opts.jobs {
        driver.jobs(n);
    }
    if opts.builtin {
        mc_checkers::all_checkers(&mut driver, &spec).map_err(|e| CliError(e.to_string()))?;
    }
    for checker in &opts.checkers {
        let text = std::fs::read_to_string(checker)
            .map_err(|e| CliError(format!("{}: {e}", checker.display())))?;
        driver
            .add_metal_source(&text)
            .map_err(|e| CliError(format!("{}: {e}", checker.display())))?;
    }

    let mut sources = Vec::new();
    for file in &opts.files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| CliError(format!("{}: {e}", file.display())))?;
        sources.push((text, file.display().to_string()));
    }
    let mut reports = driver
        .check_sources(&sources)
        .map_err(|e| CliError(e.to_string()))?;
    Report::sort_by_confidence(&mut reports);
    Ok(reports)
}

fn mc_cfg_mode_exhaustive() -> mc_cfg::Mode {
    mc_cfg::Mode::Exhaustive {
        max_paths: 1_000_000,
    }
}

/// Writes the six generated protocols (sources, spec JSON, and manifest)
/// under `dir`.
fn emit_corpus(dir: &std::path::Path, seed: u64) -> Result<(), CliError> {
    let io = |e: std::io::Error| CliError(e.to_string());
    for proto in mc_corpus::generate_all(seed) {
        let pdir = dir.join(&proto.name);
        std::fs::create_dir_all(&pdir).map_err(io)?;
        for f in &proto.files {
            std::fs::write(pdir.join(&f.name), &f.source).map_err(io)?;
        }
        let spec_json = mc_json::to_string_pretty(&proto.spec);
        std::fs::write(pdir.join("spec.json"), spec_json).map_err(io)?;
        let manifest: String = proto
            .manifest
            .iter()
            .map(|p| {
                format!(
                    "{}\t{}\t{}\t{:?}\t{}\t{}\t{}\n",
                    p.checker,
                    p.file,
                    p.function,
                    p.kind,
                    p.expected_reports,
                    p.expected_reports_pruned,
                    p.note
                )
            })
            .collect();
        std::fs::write(pdir.join("MANIFEST.tsv"), manifest).map_err(io)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Result<Options, CliError> {
        parse_args(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn default_options_match_documented_defaults() {
        // Programmatic callers of `run()` construct `Options` directly;
        // they must get pruning on and the stock seed, same as the CLI.
        let o = Options::default();
        assert!(o.prune);
        assert_eq!(o.seed, mc_corpus::DEFAULT_SEED);
    }

    #[test]
    fn parses_typical_invocation() {
        let o = args(&["--builtin", "--mode", "exhaustive", "a.c", "b.c"]).unwrap();
        assert!(o.builtin);
        assert!(o.exhaustive);
        assert_eq!(o.files.len(), 2);
    }

    #[test]
    fn requires_input_files() {
        assert!(args(&["--builtin"]).is_err());
    }

    #[test]
    fn requires_some_checker() {
        assert!(args(&["a.c"]).is_err());
    }

    #[test]
    fn seed_parsing() {
        let o = args(&["--emit-corpus", "/tmp/x", "--seed", "0xF1A5"]).unwrap();
        assert_eq!(o.seed, 0xF1A5);
        let o = args(&["--emit-corpus", "/tmp/x", "--seed", "42"]).unwrap();
        assert_eq!(o.seed, 42);
        assert!(args(&["--emit-corpus", "/tmp/x", "--seed", "zz"]).is_err());
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(args(&["--frobnicate", "a.c"]).is_err());
    }

    #[test]
    fn jobs_parsing() {
        let o = args(&["--builtin", "--jobs", "4", "a.c"]).unwrap();
        assert_eq!(o.jobs, Some(4));
        let o = args(&["--builtin", "a.c"]).unwrap();
        assert_eq!(o.jobs, None);
    }

    #[test]
    fn jobs_rejects_zero_and_garbage() {
        assert!(args(&["--builtin", "--jobs", "0", "a.c"]).is_err());
        assert!(args(&["--builtin", "--jobs", "four", "a.c"]).is_err());
        assert!(args(&["--builtin", "--jobs", "-2", "a.c"]).is_err());
        assert!(args(&["--builtin", "--jobs"]).is_err());
    }

    #[test]
    fn jobs_documented_in_usage() {
        assert!(USAGE.contains("--jobs"));
    }

    #[test]
    fn prune_flags_parse_and_default_on() {
        let o = args(&["--builtin", "a.c"]).unwrap();
        assert!(o.prune, "pruning must default on");
        let o = args(&["--builtin", "--no-prune", "a.c"]).unwrap();
        assert!(!o.prune);
        let o = args(&["--builtin", "--no-prune", "--prune", "a.c"]).unwrap();
        assert!(o.prune, "later flag wins");
        assert!(USAGE.contains("--no-prune"));
    }

    #[test]
    fn no_prune_restores_correlated_branch_reports() {
        let dir = std::env::temp_dir().join("mcheck_prune_test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("corr.c");
        // The §6 correlated-branch shape: infeasible interleavings yield a
        // double free and a leak unless the feasibility analysis runs.
        std::fs::write(
            &src,
            "void PIHandler(void) {\n\
             if (gMode) { DB_FREE(); }\n\
             if (!gMode) { DB_FREE(); }\n\
             }\n",
        )
        .unwrap();
        let pruned = run(&args(&["--builtin", src.to_str().unwrap()]).unwrap()).unwrap();
        assert!(
            pruned.iter().all(|r| r.checker != "buffer_mgmt"),
            "default pruning refutes the correlated branches: {pruned:?}"
        );
        let unpruned = run(&args(&["--builtin", "--no-prune", src.to_str().unwrap()]).unwrap())
            .unwrap()
            .into_iter()
            .filter(|r| r.checker == "buffer_mgmt")
            .collect::<Vec<_>>();
        assert!(!unpruned.is_empty(), "--no-prune reports infeasible paths");
    }

    #[test]
    fn run_with_metal_checker_on_temp_files() {
        let dir = std::env::temp_dir().join("mcheck_test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("h.c");
        std::fs::write(&src, "void h(void) { MISCBUS_READ_DB(a, b); }").unwrap();
        let sm = dir.join("race.metal");
        std::fs::write(
            &sm,
            "sm race { decl { scalar } a, b; start: { MISCBUS_READ_DB(a, b); } ==> { err(\"raw read\"); } ; }",
        )
        .unwrap();
        let opts = args(&["--checker", sm.to_str().unwrap(), src.to_str().unwrap()]).unwrap();
        let reports = run(&opts).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].message, "raw read");
    }

    #[test]
    fn emit_corpus_writes_files() {
        let dir = std::env::temp_dir().join("mcheck_corpus_test");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = args(&["--emit-corpus", dir.to_str().unwrap(), "--seed", "7"]).unwrap();
        run(&opts).unwrap();
        assert!(dir.join("bitvector").join("spec.json").exists());
        assert!(dir.join("common").join("MANIFEST.tsv").exists());
        let any_c = std::fs::read_dir(dir.join("sci"))
            .unwrap()
            .any(|e| e.unwrap().file_name().to_string_lossy().ends_with(".c"));
        assert!(any_c);
    }

    #[test]
    fn spec_json_roundtrip() {
        let mut spec = FlashSpec::new();
        spec.free_routines.insert("f".into());
        spec.lane_quota.insert("h".into(), [1, 2, 3, 4]);
        let json = mc_json::to_string(&spec);
        let back: FlashSpec = mc_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}

#[cfg(test)]
mod format_tests {
    use super::*;

    #[test]
    fn format_flag_parses() {
        let o = parse_args(["--builtin", "--format", "json", "a.c"].map(String::from)).unwrap();
        assert!(o.json);
        let o = parse_args(["--builtin", "--format", "text", "a.c"].map(String::from)).unwrap();
        assert!(!o.json);
        assert!(parse_args(["--builtin", "--format", "xml", "a.c"].map(String::from)).is_err());
    }

    #[test]
    fn reports_serialize_to_json() {
        let r = mc_driver::Report::error("c", "f.c", "g", mc_ast::Span::new(3, 4), "m");
        let json = mc_json::to_string(&r);
        assert!(json.contains("\"severity\":\"error\""));
        assert!(json.contains("\"line\":3"));
        let back: mc_driver::Report = mc_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
