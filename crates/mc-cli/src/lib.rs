//! # mc-cli
//!
//! Library backing the `mcheck` command-line tool: argument parsing and
//! the run logic, factored out of `main` so it can be tested.
//!
//! ```text
//! mcheck [OPTIONS] <file.c>...
//!
//!   --checker <file.metal>   add a metal checker (repeatable)
//!   --builtin                add the full built-in FLASH suite
//!   --spec <spec.json>       FlashSpec tables for the native checkers
//!   --mode <state-set|exhaustive>
//!   --jobs <n>               worker threads (default: available parallelism)
//!   --prune / --no-prune     path-feasibility pruning (default on)
//!   --refute / --no-refute   symbolic witness refutation (default on)
//!   --emit-corpus <dir>      write the synthetic FLASH corpus and exit
//!   --seed <n>               corpus seed (default 0xF1A5)
//! ```

#![warn(missing_docs)]

use mc_checkers::flash::FlashSpec;
use mc_driver::cache::DiskCache;
use mc_driver::{
    CheckEngine, Driver, Invalidation, MetalEngine, Report, RunStats, Severity, Verdict,
};
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

mod baseline;
#[cfg(unix)]
pub mod daemon;
mod render;

pub use baseline::{apply_baseline, Baseline, BaselineEntry, BaselineOutcome};
pub use render::{json_envelope, partition_refuted, partition_suppressed, render, Format};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Metal checker files to load.
    pub checkers: Vec<PathBuf>,
    /// Whether to register the built-in FLASH suite.
    pub builtin: bool,
    /// Optional FlashSpec JSON path.
    pub spec: Option<PathBuf>,
    /// Use exhaustive traversal instead of the state-set worklist.
    pub exhaustive: bool,
    /// Worker threads for parsing and checking (`None`: available
    /// parallelism). Reports are identical at any worker count.
    pub jobs: Option<usize>,
    /// Path-feasibility pruning (`--no-prune` turns it off, reproducing
    /// the paper's unpruned xg++ behaviour).
    pub prune: bool,
    /// Inter-procedural checking: resolve call sites through bottom-up
    /// function summaries instead of treating calls as opaque
    /// (`--interproc` turns it on; off reproduces xg++'s per-function
    /// behaviour, except for the lane checker, which is always summary-
    /// based).
    pub interproc: bool,
    /// Symbolic witness refutation (`--no-refute` turns it off): each
    /// report's witness path is sliced and solved; reports whose path
    /// condition is infeasible are demoted to `refuted` and dropped from
    /// the output, and satisfiable witnesses whose solver model reproduces
    /// the violation in concrete replay are promoted to `confirmed`.
    pub refute: bool,
    /// Metal execution engine (`--metal-engine compiled|interp`). The
    /// compiled engine lowers each state machine to an indexed decision
    /// program; the interpreter is kept as a differential oracle. Reports
    /// are byte-identical either way.
    pub metal_engine: MetalEngine,
    /// Write the corpus to this directory instead of checking.
    pub emit_corpus: Option<PathBuf>,
    /// Corpus seed.
    pub seed: u64,
    /// Report output format (`--format text|json|sarif`).
    pub format: Format,
    /// Baseline file: written when missing, compared (by fingerprint)
    /// when present; known reports are filtered and the run exits 0 when
    /// nothing new remains.
    pub baseline: Option<PathBuf>,
    /// Persist check artifacts here; warm runs only re-check changed
    /// files.
    pub cache_dir: Option<PathBuf>,
    /// Ignore `cache_dir` (fully cold run; nothing read or written).
    pub no_cache: bool,
    /// Bound the on-disk cache to this many bytes; the oldest record files
    /// are evicted when a store pushes the total over (`None`: unbounded).
    pub cache_cap_bytes: Option<u64>,
    /// Granularity at which a dirty file's previous results are reused
    /// (`--invalidate function|component`). Function is the default;
    /// component keeps the coarser pre-function-index behavior as a
    /// differential oracle. Reports are byte-identical either way.
    pub invalidate: Invalidation,
    /// Keep running: poll the input files (mtime + content hash) and
    /// re-check on every change.
    pub watch: bool,
    /// Watch poll interval in milliseconds.
    pub watch_interval_ms: u64,
    /// Stop watching after this many check cycles (`None`: run until
    /// killed). Mainly for scripting and tests.
    pub watch_iterations: Option<usize>,
    /// Drive `--watch` through an `mcheckd` daemon on this unix socket
    /// instead of an in-process engine: the watch loop becomes a thin
    /// client that connects to a running daemon (or spawns one) and sends
    /// a `check` request per settled edit burst. Unix only.
    pub daemon_socket: Option<PathBuf>,
    /// Check only this shard's slice of the dirty units (`--shard i/N`,
    /// 0-based `i` of `N`): units are partitioned by content fingerprint,
    /// results land in the shared `--cache-dir`, and a `shard-i-of-N.json`
    /// manifest records the run so the `merge` subcommand can fold the
    /// shards into one report. A shard run prints a summary instead of
    /// rendering reports (its report set is partial by design).
    pub shard: Option<(u32, u32)>,
    /// Merge mode (the `merge` subcommand): validate every shard manifest
    /// in `--cache-dir` against this invocation's checker suite, then run
    /// the full check over the warm shared cache. The output is
    /// byte-identical to a single-process run of the same options.
    pub merge: bool,
    /// Corpus scale factor for `--emit-corpus` (`--scale N`): emit `N`
    /// protocol families. Family 0 is the stock seed corpus byte-for-byte;
    /// each extra family re-derives the five protocols from a distinct
    /// seed and adds deeper call chains, calibrated against the paper's
    /// Table 1 code sizes.
    pub scale: usize,
    /// C sources to check.
    pub files: Vec<PathBuf>,
}

/// The documented defaults: pruning on, the stock corpus seed. Derived
/// `Default` would give `prune: false` and silently hand programmatic
/// callers the paper's unpruned behaviour.
impl Default for Options {
    fn default() -> Options {
        Options {
            checkers: Vec::new(),
            builtin: false,
            spec: None,
            exhaustive: false,
            jobs: None,
            prune: true,
            interproc: false,
            refute: true,
            metal_engine: MetalEngine::default(),
            emit_corpus: None,
            seed: mc_corpus::DEFAULT_SEED,
            format: Format::Text,
            baseline: None,
            cache_dir: None,
            no_cache: false,
            cache_cap_bytes: None,
            invalidate: Invalidation::default(),
            watch: false,
            watch_interval_ms: 500,
            watch_iterations: None,
            daemon_socket: None,
            shard: None,
            merge: false,
            scale: 1,
            files: Vec::new(),
        }
    }
}

/// A CLI usage or I/O error.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mcheck: {}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text printed on `--help` or bad arguments.
pub const USAGE: &str = "\
usage: mcheck [OPTIONS] <file.c>...
       mcheck merge [OPTIONS] <file.c>...
  --checker <file.metal>   add a metal checker (repeatable)
  --builtin                add the built-in FLASH checker suite
  --spec <spec.json>       FlashSpec tables (handler classes, lane quotas,
                           routine tables) for the native checkers
  --mode <state-set|exhaustive>   path traversal mode (default state-set)
  --jobs <n>               worker threads for parsing and checking
                           (default: available parallelism; output is
                           identical at any worker count)
  --prune / --no-prune     refute paths whose branch conditions contradict
                           each other (default on; --no-prune reproduces
                           the paper's unpruned behaviour)
  --interproc / --no-interproc
                           resolve call sites through bottom-up function
                           summaries so helpers stop looking opaque
                           (default off; the lane checker is always
                           summary-based)
  --refute / --no-refute   slice each report's witness path and solve its
                           branch conditions symbolically (default on):
                           infeasible witnesses are demoted to `refuted`
                           and hidden; satisfiable ones whose solver model
                           reproduces the violation in concrete replay are
                           promoted to `confirmed` with the input attached
  --metal-engine <compiled|interp>
                           how metal state machines execute (default
                           compiled: each sm is lowered to an indexed
                           decision program; interp keeps the reference
                           interpreter as a differential oracle — reports
                           are byte-identical either way)
  --format <text|json|sarif>
                           report output format (default text); reports
                           are ordered most-likely-real first (descending
                           confidence). text shows source excerpts and the
                           numbered witness path; json is the documented
                           mcheck-reports envelope; sarif is SARIF 2.1.0
                           with the witness path as codeFlows
  --baseline <file>        if <file> is missing, write the run's report
                           fingerprints to it and exit 0; if it exists,
                           hide reports whose fingerprint it contains and
                           exit 0 exactly when no new report remains
  --cache-dir <dir>        persist check artifacts between runs; a warm
                           run only re-checks files whose content changed
  --no-cache               ignore --cache-dir for this run (fully cold)
  --cache-cap-bytes <n>    bound the on-disk cache: evict the oldest
                           record files when a store pushes the total
                           size over n bytes (default unbounded)
  --invalidate <function|component>
                           granularity of cached-result reuse inside a
                           dirty file (default function: red/green per
                           function; component re-checks the whole file,
                           kept as a differential oracle — reports are
                           byte-identical either way)
  --watch                  keep running: poll the input files (mtime +
                           content hash) and re-check on every change;
                           bursts of edits inside one poll interval
                           coalesce into a single re-check
  --watch-interval <ms>    watch poll interval (default 500)
  --watch-iterations <n>   exit after n check cycles (for scripting/tests)
  --daemon-socket <path>   drive --watch through an mcheckd daemon on this
                           unix socket: connect to a running daemon (or
                           spawn one) and send a check request per edit
                           instead of checking in-process (unix only)
  --shard <i/N>            check only this shard's slice of the dirty
                           units (0-based i of N, partitioned by content
                           fingerprint); results and a shard manifest go
                           into the shared --cache-dir, and no report is
                           rendered. Run the `merge` subcommand afterwards
                           to fold the shards into the full report —
                           byte-identical to a single-process run
  --emit-corpus <dir>      write the synthetic FLASH corpus and exit
  --seed <n>               corpus seed (default 0xF1A5)
  --scale <n>              with --emit-corpus: emit n protocol families
                           (default 1, the stock corpus; family 0 is
                           always byte-identical to it, extra families
                           add reseeded protocols with deeper call
                           chains)
  --help                   show this message

exit codes: 0 ran clean (no reports), 1 ran and emitted reports,
            2 usage, I/O, or parse error";

/// Parses arguments (without the program name).
///
/// # Errors
///
/// Returns [`CliError`] on unknown flags, missing values, or a run that
/// would do nothing.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Options, CliError> {
    let mut opts = Options::default();
    let mut it = args.into_iter().peekable();
    // `merge` is a leading subcommand, not a flag: `mcheck merge ...`.
    if it.peek().is_some_and(|a| a == "merge") {
        it.next();
        opts.merge = true;
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--checker" => {
                let v = it.next().ok_or(CliError("--checker needs a file".into()))?;
                opts.checkers.push(PathBuf::from(v));
            }
            "--builtin" => opts.builtin = true,
            "--spec" => {
                let v = it.next().ok_or(CliError("--spec needs a file".into()))?;
                opts.spec = Some(PathBuf::from(v));
            }
            "--mode" => {
                let v = it.next().ok_or(CliError("--mode needs a value".into()))?;
                match v.as_str() {
                    "state-set" => opts.exhaustive = false,
                    "exhaustive" => opts.exhaustive = true,
                    other => {
                        return Err(CliError(format!(
                            "unknown mode `{other}` (state-set | exhaustive)"
                        )))
                    }
                }
            }
            "--jobs" => {
                let v = it.next().ok_or(CliError("--jobs needs a number".into()))?;
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => opts.jobs = Some(n),
                    _ => {
                        return Err(CliError(format!(
                            "--jobs expects a positive integer, got `{v}`"
                        )))
                    }
                }
            }
            "--prune" => opts.prune = true,
            "--no-prune" => opts.prune = false,
            "--interproc" => opts.interproc = true,
            "--no-interproc" => opts.interproc = false,
            "--refute" => opts.refute = true,
            "--no-refute" => opts.refute = false,
            "--metal-engine" => {
                let v = it
                    .next()
                    .ok_or(CliError("--metal-engine needs a value".into()))?;
                opts.metal_engine = MetalEngine::parse(&v).ok_or_else(|| {
                    CliError(format!("unknown metal engine `{v}` (compiled | interp)"))
                })?;
            }
            "--format" => {
                let v = it.next().ok_or(CliError("--format needs a value".into()))?;
                opts.format = Format::parse(&v).ok_or_else(|| {
                    CliError(format!("unknown format `{v}` (text | json | sarif)"))
                })?;
            }
            "--baseline" => {
                let v = it
                    .next()
                    .ok_or(CliError("--baseline needs a file".into()))?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--cache-dir" => {
                let v = it
                    .next()
                    .ok_or(CliError("--cache-dir needs a directory".into()))?;
                opts.cache_dir = Some(PathBuf::from(v));
            }
            "--no-cache" => opts.no_cache = true,
            "--cache-cap-bytes" => {
                let v = it
                    .next()
                    .ok_or(CliError("--cache-cap-bytes needs a byte count".into()))?;
                match v.parse::<u64>() {
                    Ok(n) if n >= 1 => opts.cache_cap_bytes = Some(n),
                    _ => {
                        return Err(CliError(format!(
                            "--cache-cap-bytes expects a positive byte count, got `{v}`"
                        )))
                    }
                }
            }
            "--invalidate" => {
                let v = it
                    .next()
                    .ok_or(CliError("--invalidate needs a value".into()))?;
                opts.invalidate = match v.as_str() {
                    "function" => Invalidation::Function,
                    "component" => Invalidation::Component,
                    other => {
                        return Err(CliError(format!(
                            "unknown invalidation granularity `{other}` (function | component)"
                        )))
                    }
                };
            }
            "--watch" => opts.watch = true,
            "--watch-interval" => {
                let v = it
                    .next()
                    .ok_or(CliError("--watch-interval needs milliseconds".into()))?;
                opts.watch_interval_ms = v.parse::<u64>().map_err(|_| {
                    CliError(format!("--watch-interval expects milliseconds, got `{v}`"))
                })?;
            }
            "--watch-iterations" => {
                let v = it
                    .next()
                    .ok_or(CliError("--watch-iterations needs a number".into()))?;
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => opts.watch_iterations = Some(n),
                    _ => {
                        return Err(CliError(format!(
                            "--watch-iterations expects a positive integer, got `{v}`"
                        )))
                    }
                }
            }
            "--daemon-socket" => {
                let v = it
                    .next()
                    .ok_or(CliError("--daemon-socket needs a path".into()))?;
                opts.daemon_socket = Some(PathBuf::from(v));
            }
            "--emit-corpus" => {
                let v = it
                    .next()
                    .ok_or(CliError("--emit-corpus needs a directory".into()))?;
                opts.emit_corpus = Some(PathBuf::from(v));
            }
            "--seed" => {
                let v = it.next().ok_or(CliError("--seed needs a number".into()))?;
                opts.seed =
                    parse_seed(&v).ok_or_else(|| CliError(format!("invalid seed `{v}`")))?;
            }
            "--scale" => {
                let v = it.next().ok_or(CliError("--scale needs a number".into()))?;
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => opts.scale = n,
                    _ => {
                        return Err(CliError(format!(
                            "--scale expects a positive integer, got `{v}`"
                        )))
                    }
                }
            }
            "--shard" => {
                let v = it.next().ok_or(CliError("--shard needs i/N".into()))?;
                opts.shard = Some(parse_shard(&v).ok_or_else(|| {
                    CliError(format!("--shard expects `i/N` with 0 <= i < N, got `{v}`"))
                })?);
            }
            "--help" | "-h" => return Err(CliError(USAGE.to_string())),
            other if other.starts_with('-') => {
                return Err(CliError(format!("unknown option `{other}`\n{USAGE}")))
            }
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    if opts.emit_corpus.is_none() {
        if opts.files.is_empty() {
            return Err(CliError(format!("no input files\n{USAGE}")));
        }
        if opts.checkers.is_empty() && !opts.builtin {
            return Err(CliError(
                "nothing to do: pass --checker and/or --builtin".into(),
            ));
        }
    }
    if opts.shard.is_some() || opts.merge {
        if opts.shard.is_some() && opts.merge {
            return Err(CliError(
                "the `merge` subcommand and --shard are mutually exclusive".into(),
            ));
        }
        if opts.cache_dir.is_none() || opts.no_cache {
            return Err(CliError(
                "--shard and `merge` need the shared shard cache: pass --cache-dir \
                 (without --no-cache)"
                    .into(),
            ));
        }
        if opts.watch {
            return Err(CliError(
                "--watch cannot be combined with --shard or `merge`".into(),
            ));
        }
    }
    Ok(opts)
}

/// Parses `i/N` shard syntax; `None` unless `0 <= i < N` and `N >= 1`.
fn parse_shard(s: &str) -> Option<(u32, u32)> {
    let (i, n) = s.split_once('/')?;
    let i: u32 = i.parse().ok()?;
    let n: u32 = n.parse().ok()?;
    (n >= 1 && i < n).then_some((i, n))
}

fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Builds the driver the options describe: traversal settings, worker
/// count, checkers, and a config epoch hashed from the spec file's bytes
/// (so editing the spec invalidates every cached result).
///
/// # Errors
///
/// Returns [`CliError`] for unreadable or unparsable spec/checker files.
pub fn build_driver(opts: &Options) -> Result<Driver, CliError> {
    let mut epoch = mc_ast::Fnv1a::new();
    let spec = match &opts.spec {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
            epoch.write_str("spec:").write_str(&text);
            mc_json::from_str::<FlashSpec>(&text)
                .map_err(|e| CliError(format!("{}: {e}", path.display())))?
        }
        None => FlashSpec::new(),
    };

    let mut driver = Driver::new();
    if opts.exhaustive {
        driver.mode = mc_cfg_mode_exhaustive();
    }
    driver.prune(opts.prune);
    driver.interproc(opts.interproc);
    driver.refute(opts.refute);
    driver.set_metal_engine(opts.metal_engine);
    if let Some(n) = opts.jobs {
        driver.jobs(n);
    }
    if opts.builtin {
        epoch.write_str("builtin");
        mc_checkers::all_checkers(&mut driver, &spec).map_err(|e| CliError(e.to_string()))?;
    }
    for checker in &opts.checkers {
        let text = std::fs::read_to_string(checker)
            .map_err(|e| CliError(format!("{}: {e}", checker.display())))?;
        driver
            .add_metal_source_from(&text, &checker.display().to_string())
            .map_err(|e| CliError(format!("{}: {e}", checker.display())))?;
    }
    driver.set_config_epoch(epoch.finish());
    Ok(driver)
}

/// Reads every input file into `(source, file-name)` pairs.
fn read_sources(files: &[PathBuf]) -> Result<Vec<(String, String)>, CliError> {
    let mut sources = Vec::new();
    for file in files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| CliError(format!("{}: {e}", file.display())))?;
        sources.push((text, file.display().to_string()));
    }
    Ok(sources)
}

/// The incremental engine the options ask for: disk-backed when
/// `--cache-dir` is set and `--no-cache` is not, memoizing-only otherwise.
///
/// # Errors
///
/// Returns [`CliError`] if the cache directory cannot be created.
pub fn engine_for(opts: &Options) -> Result<CheckEngine, CliError> {
    let mut engine = match &opts.cache_dir {
        Some(dir) if !opts.no_cache => {
            let mut disk =
                DiskCache::open(dir).map_err(|e| CliError(format!("{}: {e}", dir.display())))?;
            disk.set_cap_bytes(opts.cache_cap_bytes);
            CheckEngine::with_disk(disk)
        }
        _ => CheckEngine::in_memory(),
    };
    engine.set_invalidation(opts.invalidate);
    Ok(engine)
}

/// One engine-backed check of `sources` with the same post-processing as
/// [`run`]: metal load diagnostics folded in, confirmed-verdict promotion,
/// confidence ordering, then the refuted and suppressed partitions.
/// Returns the reports to show plus the suppressed count, the refuted
/// count, and the engine's [`RunStats`]. Shared by the watch loop and the
/// `mcheckd` daemon so every client surface agrees byte-for-byte with a
/// batch run.
pub fn checked_reports(
    driver: &Driver,
    engine: &mut CheckEngine,
    opts: &Options,
    sources: &[(String, String)],
) -> Result<(Vec<Report>, usize, usize, RunStats), CliError> {
    let (mut reports, stats) = engine
        .check_sources(driver, sources)
        .map_err(|e| CliError(e.to_string()))?;
    reports.extend(driver.metal_load_diagnostics());
    if opts.refute {
        promote_confirmed(&mut reports, sources);
    }
    Report::sort_by_confidence(&mut reports);
    let (reports, refuted) = partition_refuted(reports);
    let mut supp_sources = sources.to_vec();
    supp_sources.extend(read_sources(&opts.checkers)?);
    let (reports, suppressed) = partition_suppressed(reports, &supp_sources);
    Ok((reports, suppressed, refuted, stats))
}

/// Executes the parsed options. Returns the reports (empty for
/// `--emit-corpus` runs) so `main` can set the exit code.
///
/// A run with `--cache-dir` goes through the incremental [`CheckEngine`];
/// reports are byte-identical to an uncached run either way.
///
/// # Errors
///
/// Returns [`CliError`] for I/O, parse, or metal errors.
pub fn run(opts: &Options) -> Result<Vec<Report>, CliError> {
    if let Some(dir) = &opts.emit_corpus {
        emit_corpus(dir, opts.seed, opts.scale)?;
        return Ok(Vec::new());
    }

    let driver = build_driver(opts)?;
    let sources = read_sources(&opts.files)?;
    let mut reports = if opts.cache_dir.is_some() && !opts.no_cache {
        let mut engine = engine_for(opts)?;
        engine
            .check_sources(&driver, &sources)
            .map_err(|e| CliError(e.to_string()))?
            .0
    } else {
        driver
            .check_sources(&sources)
            .map_err(|e| CliError(e.to_string()))?
    };
    // Load-time diagnostics from compiling the metal programs (unreachable
    // states, shadowed rules, ...) ride along as ordinary warning reports.
    reports.extend(driver.metal_load_diagnostics());
    if opts.refute {
        promote_confirmed(&mut reports, &sources);
    }
    Report::sort_by_confidence(&mut reports);
    Ok(reports)
}

/// Promotes `sat` reports to `confirmed` by replaying each one's solver
/// model concretely in the simulator ([`mc_sim::replay`]). Promotion nudges
/// confidence up rather than pinning it, so the paper's ranking heuristics
/// (NAK paths, debug-guarded code) still order confirmed reports among
/// themselves.
///
/// Replay needs the checked sources as an executable program; files the
/// simulator's handler subset cannot parse (or checkers with no dynamic
/// manifestation) simply leave their reports at `sat` — promotion is
/// strictly best-effort and never demotes.
fn promote_confirmed(reports: &mut [Report], sources: &[(String, String)]) {
    if !reports.iter().any(|r| r.verdict == Verdict::Sat) {
        return;
    }
    let Ok(program) = mc_sim::Program::from_sources(sources) else {
        return;
    };
    for r in reports.iter_mut() {
        if r.verdict != Verdict::Sat || !mc_sim::replayable_checker(&r.checker) {
            continue;
        }
        if mc_sim::replay(program.clone(), &r.checker, &r.function, &r.model) {
            r.verdict = Verdict::Confirmed;
            r.confidence = r.confidence.saturating_add(10).min(100);
        }
    }
}

/// A watched file's last observed state: its stat signature (cheap to
/// re-read every poll) and a hash of its contents (consulted only when the
/// stat changed, so a `touch` that rewrites identical bytes does not
/// trigger a re-check).
#[derive(Debug, Clone, PartialEq, Eq)]
struct FileSnap {
    stat: Option<(SystemTime, u64)>,
    hash: u64,
}

fn stat_of(path: &Path) -> Option<(SystemTime, u64)> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.modified().ok()?, meta.len()))
}

fn snap_of(path: &Path) -> FileSnap {
    let stat = stat_of(path);
    let hash = std::fs::read(path)
        .map(|bytes| mc_ast::fnv1a(&bytes))
        .unwrap_or(0);
    FileSnap { stat, hash }
}

/// One watch poll: returns `true` when any file's *content* changed since
/// the snapshots were taken, updating the snapshots. Transient I/O errors
/// (a file mid-save, briefly missing) never trigger: the old hash is kept
/// until the file is readable again with different bytes.
fn poll_changed(files: &[PathBuf], snaps: &mut [FileSnap]) -> bool {
    let mut changed = false;
    for (file, snap) in files.iter().zip(snaps.iter_mut()) {
        let stat = stat_of(file);
        if stat == snap.stat {
            continue;
        }
        snap.stat = stat;
        if let Ok(bytes) = std::fs::read(file) {
            let hash = mc_ast::fnv1a(&bytes);
            if hash != snap.hash {
                snap.hash = hash;
                changed = true;
            }
        }
    }
    changed
}

/// Runs `mcheck --watch`: check, report, then poll the files and re-check
/// on every content change, reusing the incremental engine so unchanged
/// files are never re-parsed. Parse and read errors are reported and
/// watched through — a broken intermediate save does not kill the session.
///
/// Output goes to `out` (stdout in `main`; a buffer in tests). Runs until
/// killed, or after `opts.watch_iterations` check cycles when set.
///
/// # Errors
///
/// Returns [`CliError`] only for setup failures: unreadable spec/checker
/// files or an unusable cache directory.
pub fn run_watch(opts: &Options, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    #[cfg(unix)]
    if let Some(socket) = &opts.daemon_socket {
        return daemon::run_watch_client(opts, socket, out);
    }
    let driver = build_driver(opts)?;
    let mut engine = engine_for(opts)?;
    let interval = std::time::Duration::from_millis(opts.watch_interval_ms.max(1));
    let mut cycles = 0usize;
    let mut snaps: Vec<FileSnap> = opts.files.iter().map(|f| snap_of(f)).collect();
    // Suppression comments are honored wherever a report can point,
    // including the metal checker files themselves (load-time validation
    // warnings are reported against the checker's own source). The checker
    // files are read once, like build_driver does.
    let checker_sources = read_sources(&opts.checkers)?;
    loop {
        match read_sources(&opts.files) {
            Ok(sources) => match engine.check_sources(&driver, &sources) {
                Ok((mut reports, stats)) => {
                    reports.extend(driver.metal_load_diagnostics());
                    if opts.refute {
                        promote_confirmed(&mut reports, &sources);
                    }
                    Report::sort_by_confidence(&mut reports);
                    let (reports, refuted) = partition_refuted(reports);
                    let mut supp_sources = sources.clone();
                    supp_sources.extend(checker_sources.iter().cloned());
                    let (reports, suppressed) = partition_suppressed(reports, &supp_sources);
                    let _ = writeln!(
                        out,
                        "[watch] checked {} file(s) ({} re-checked, {} replayed): {} report(s)",
                        stats.units,
                        stats.units_checked,
                        stats.units - stats.units_checked,
                        reports.len()
                    );
                    render(
                        opts.format,
                        &reports,
                        &supp_sources,
                        suppressed,
                        refuted,
                        out,
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "mcheck: {e}");
                }
            },
            Err(e) => {
                let _ = writeln!(out, "{e}");
            }
        }
        let _ = out.flush();
        cycles += 1;
        if opts.watch_iterations.is_some_and(|n| cycles >= n) {
            return Ok(());
        }
        wait_for_settled_change(&opts.files, &mut snaps, interval);
    }
}

/// Blocks until the watched files change *and then stop changing*: after
/// the first detected change, polling continues until one full interval
/// passes with no further change, so a burst of rapid edits (an editor
/// save immediately followed by a formatter rewrite) coalesces into a
/// single re-check of the final content instead of one per write.
fn wait_for_settled_change(
    files: &[PathBuf],
    snaps: &mut [FileSnap],
    interval: std::time::Duration,
) {
    loop {
        std::thread::sleep(interval);
        if poll_changed(files, snaps) {
            break;
        }
    }
    loop {
        std::thread::sleep(interval);
        if !poll_changed(files, snaps) {
            return;
        }
    }
}

/// Executes the parsed options end-to-end: check, drop reports the
/// refutation pass demoted, apply `// mc-suppress:` comments, apply
/// `--baseline`, render in the selected format, and return the process
/// exit code.
///
/// Report output goes to `out`; human-facing notes (the baseline summary
/// and the error-count footer) go to `err`, so `--format json|sarif`
/// output on stdout stays machine-parseable.
///
/// # Errors
///
/// Returns [`CliError`] for I/O, parse, metal, or baseline-file errors.
pub fn run_full(
    opts: &Options,
    out: &mut dyn std::io::Write,
    err: &mut dyn std::io::Write,
) -> Result<u8, CliError> {
    if let Some(dir) = &opts.emit_corpus {
        emit_corpus(dir, opts.seed, opts.scale)?;
        let _ = writeln!(out, "corpus written");
        return Ok(0);
    }
    if let Some((si, sn)) = opts.shard {
        return run_shard(opts, si, sn, err);
    }
    if opts.merge {
        let driver = build_driver(opts)?;
        let shards = validate_shard_manifests(opts, &driver)?;
        let _ = writeln!(err, "merge: folding {shards} shard manifest(s)");
    }
    let reports = run(opts)?;
    let sources = read_sources(&opts.files)?;
    let (reports, refuted) = partition_refuted(reports);
    // Suppression comments are honored wherever a report can point,
    // including the metal checker files themselves (load-time validation
    // warnings are reported against the checker's own source).
    let mut supp_sources = sources.clone();
    supp_sources.extend(read_sources(&opts.checkers)?);
    let (mut reports, suppressed) = partition_suppressed(reports, &supp_sources);
    let mut exit = u8::from(!reports.is_empty());
    if let Some(path) = &opts.baseline {
        match apply_baseline(path, &mut reports)? {
            BaselineOutcome::Written(n) => {
                let _ = writeln!(
                    err,
                    "baseline: wrote {n} fingerprint(s) to {}",
                    path.display()
                );
                exit = 0;
            }
            BaselineOutcome::Compared { known, resolved } => {
                let _ = writeln!(
                    err,
                    "baseline: {known} known report(s) hidden, {} new, {resolved} resolved",
                    reports.len()
                );
                exit = u8::from(!reports.is_empty());
            }
        }
    }
    render(
        opts.format,
        &reports,
        &supp_sources,
        suppressed,
        refuted,
        out,
    );
    if !reports.is_empty() && opts.format == Format::Text {
        let errors = reports
            .iter()
            .filter(|r| r.severity == Severity::Error)
            .count();
        let _ = writeln!(err, "\n{errors} error(s), {} report(s)", reports.len());
    }
    Ok(exit)
}

/// The process exit code for a completed (non-watch) check run: `0` when
/// no reports were emitted, `1` otherwise. Usage, I/O, and parse errors
/// exit `2` (set in `main`).
pub fn exit_code(reports: &[Report]) -> u8 {
    u8::from(!reports.is_empty())
}

fn mc_cfg_mode_exhaustive() -> mc_cfg::Mode {
    mc_cfg::Mode::Exhaustive {
        max_paths: 1_000_000,
    }
}

/// One `--shard i/N` run: check only the dirty units this shard owns,
/// populating the shared `--cache-dir`, then record a
/// `shard-<i>-of-<N>.json` manifest (shard coordinates, suite key, unit
/// counts) so `mcheck merge` can validate that every shard ran the same
/// checker suite. Prints a one-line summary to `err` and exits 0 — a
/// shard's report set is partial by design, so nothing is rendered.
fn run_shard(
    opts: &Options,
    si: u32,
    sn: u32,
    err: &mut dyn std::io::Write,
) -> Result<u8, CliError> {
    let driver = build_driver(opts)?;
    let sources = read_sources(&opts.files)?;
    let mut engine = engine_for(opts)?;
    engine.set_shard(Some((si, sn)));
    let (_, stats) = engine
        .check_sources(&driver, &sources)
        .map_err(|e| CliError(e.to_string()))?;
    let dir = opts
        .cache_dir
        .as_ref()
        .expect("parse_args requires --cache-dir with --shard");
    let manifest = mc_json::object(vec![
        ("shard", mc_json::Json::Int(i64::from(si))),
        ("shards", mc_json::Json::Int(i64::from(sn))),
        (
            "suite_key",
            mc_json::Json::Str(format!("{:016x}", driver.suite_key())),
        ),
        ("units", mc_json::Json::Int(stats.units as i64)),
        (
            "units_checked",
            mc_json::Json::Int(stats.units_checked as i64),
        ),
        (
            "units_deferred",
            mc_json::Json::Int(stats.units_deferred as i64),
        ),
    ]);
    let path = dir.join(format!("shard-{si}-of-{sn}.json"));
    std::fs::write(&path, manifest.to_pretty())
        .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
    let _ = writeln!(
        err,
        "shard {si}/{sn}: {} unit(s) checked, {} owned elsewhere; run `mcheck merge` to fold",
        stats.units_checked, stats.units_deferred
    );
    Ok(0)
}

/// Validates every `shard-*.json` manifest in the cache directory against
/// this invocation's suite key, returning how many were found.
///
/// # Errors
///
/// Returns [`CliError`] when no manifest exists (nothing to merge) or any
/// manifest records a different suite key — merging shards checked under a
/// different checker suite would silently mix incompatible cached results.
fn validate_shard_manifests(opts: &Options, driver: &Driver) -> Result<usize, CliError> {
    let dir = opts
        .cache_dir
        .as_ref()
        .expect("parse_args requires --cache-dir with merge");
    let want = format!("{:016x}", driver.suite_key());
    let no_manifests = || {
        CliError(format!(
            "merge: no shard manifests in {}; run `mcheck --shard i/N` first",
            dir.display()
        ))
    };
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(no_manifests()),
        Err(e) => return Err(CliError(format!("{}: {e}", dir.display()))),
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("shard-") && n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(no_manifests());
    }
    for name in &names {
        let path = dir.join(name);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
        let json = mc_json::Json::parse(&text)
            .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
        let got = json
            .get("suite_key")
            .and_then(|v| v.as_str())
            .ok_or_else(|| CliError(format!("{}: missing suite_key", path.display())))?;
        if got != want {
            return Err(CliError(format!(
                "merge: {name} was produced by a different checker suite \
                 (suite key {got}, this run is {want}); re-run the shards \
                 with the same options"
            )));
        }
    }
    Ok(names.len())
}

/// Writes the generated protocols (sources, spec JSON, and manifest)
/// under `dir`: the six stock protocols at `scale` 1, `scale` reseeded
/// families of them otherwise (see [`mc_corpus::generate_fleet`]).
fn emit_corpus(dir: &std::path::Path, seed: u64, scale: usize) -> Result<(), CliError> {
    let io = |e: std::io::Error| CliError(e.to_string());
    for proto in mc_corpus::generate_fleet(seed, scale) {
        let pdir = dir.join(&proto.name);
        std::fs::create_dir_all(&pdir).map_err(io)?;
        for f in &proto.files {
            std::fs::write(pdir.join(&f.name), &f.source).map_err(io)?;
        }
        let spec_json = mc_json::to_string_pretty(&proto.spec);
        std::fs::write(pdir.join("spec.json"), spec_json).map_err(io)?;
        let manifest: String = proto
            .manifest
            .iter()
            .map(|p| {
                format!(
                    "{}\t{}\t{}\t{:?}\t{}\t{}\t{}\t{}\t{}\n",
                    p.checker,
                    p.file,
                    p.function,
                    p.kind,
                    p.expected_reports,
                    p.expected_reports_pruned,
                    p.expected_reports_interproc,
                    p.expected_reports_refute,
                    p.note
                )
            })
            .collect();
        std::fs::write(pdir.join("MANIFEST.tsv"), manifest).map_err(io)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Result<Options, CliError> {
        parse_args(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn default_options_match_documented_defaults() {
        // Programmatic callers of `run()` construct `Options` directly;
        // they must get pruning on and the stock seed, same as the CLI.
        let o = Options::default();
        assert!(o.prune);
        assert!(o.refute, "refutation must default on");
        assert_eq!(o.seed, mc_corpus::DEFAULT_SEED);
    }

    #[test]
    fn parses_typical_invocation() {
        let o = args(&["--builtin", "--mode", "exhaustive", "a.c", "b.c"]).unwrap();
        assert!(o.builtin);
        assert!(o.exhaustive);
        assert_eq!(o.files.len(), 2);
    }

    #[test]
    fn requires_input_files() {
        assert!(args(&["--builtin"]).is_err());
    }

    #[test]
    fn requires_some_checker() {
        assert!(args(&["a.c"]).is_err());
    }

    #[test]
    fn seed_parsing() {
        let o = args(&["--emit-corpus", "/tmp/x", "--seed", "0xF1A5"]).unwrap();
        assert_eq!(o.seed, 0xF1A5);
        let o = args(&["--emit-corpus", "/tmp/x", "--seed", "42"]).unwrap();
        assert_eq!(o.seed, 42);
        assert!(args(&["--emit-corpus", "/tmp/x", "--seed", "zz"]).is_err());
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(args(&["--frobnicate", "a.c"]).is_err());
    }

    #[test]
    fn jobs_parsing() {
        let o = args(&["--builtin", "--jobs", "4", "a.c"]).unwrap();
        assert_eq!(o.jobs, Some(4));
        let o = args(&["--builtin", "a.c"]).unwrap();
        assert_eq!(o.jobs, None);
    }

    #[test]
    fn jobs_rejects_zero_and_garbage() {
        assert!(args(&["--builtin", "--jobs", "0", "a.c"]).is_err());
        assert!(args(&["--builtin", "--jobs", "four", "a.c"]).is_err());
        assert!(args(&["--builtin", "--jobs", "-2", "a.c"]).is_err());
        assert!(args(&["--builtin", "--jobs"]).is_err());
    }

    #[test]
    fn jobs_documented_in_usage() {
        assert!(USAGE.contains("--jobs"));
    }

    #[test]
    fn shard_parsing() {
        let o = args(&[
            "--builtin",
            "--shard",
            "1/4",
            "--cache-dir",
            "/tmp/c",
            "a.c",
        ])
        .unwrap();
        assert_eq!(o.shard, Some((1, 4)));
        assert!(args(&[
            "--builtin",
            "--shard",
            "4/4",
            "--cache-dir",
            "/tmp/c",
            "a.c"
        ])
        .is_err());
        assert!(args(&[
            "--builtin",
            "--shard",
            "0/0",
            "--cache-dir",
            "/tmp/c",
            "a.c"
        ])
        .is_err());
        assert!(args(&[
            "--builtin",
            "--shard",
            "zebra",
            "--cache-dir",
            "/tmp/c",
            "a.c"
        ])
        .is_err());
        assert!(args(&["--builtin", "--shard"]).is_err());
        assert!(USAGE.contains("--shard"));
    }

    #[test]
    fn shard_and_merge_need_a_shared_cache_dir() {
        assert!(args(&["--builtin", "--shard", "0/2", "a.c"]).is_err());
        assert!(args(&["merge", "--builtin", "a.c"]).is_err());
        assert!(args(&[
            "--builtin",
            "--shard",
            "0/2",
            "--cache-dir",
            "/tmp/c",
            "--no-cache",
            "a.c"
        ])
        .is_err());
    }

    #[test]
    fn merge_subcommand_parses_only_in_leading_position() {
        let o = args(&["merge", "--builtin", "--cache-dir", "/tmp/c", "a.c"]).unwrap();
        assert!(o.merge);
        assert_eq!(o.files, vec![PathBuf::from("a.c")]);
        // Anywhere else, `merge` is an ordinary file argument.
        let o = args(&["--builtin", "merge"]).unwrap();
        assert!(!o.merge);
        assert_eq!(o.files, vec![PathBuf::from("merge")]);
    }

    #[test]
    fn merge_excludes_shard_and_watch() {
        assert!(args(&[
            "merge",
            "--builtin",
            "--cache-dir",
            "/tmp/c",
            "--shard",
            "0/2",
            "a.c"
        ])
        .is_err());
        assert!(args(&[
            "--builtin",
            "--cache-dir",
            "/tmp/c",
            "--shard",
            "0/2",
            "--watch",
            "a.c"
        ])
        .is_err());
    }

    #[test]
    fn scale_parsing() {
        let o = args(&["--emit-corpus", "/tmp/x", "--scale", "10"]).unwrap();
        assert_eq!(o.scale, 10);
        let o = args(&["--emit-corpus", "/tmp/x"]).unwrap();
        assert_eq!(o.scale, 1, "stock corpus by default");
        assert!(args(&["--emit-corpus", "/tmp/x", "--scale", "0"]).is_err());
        assert!(USAGE.contains("--scale"));
    }

    #[test]
    fn prune_flags_parse_and_default_on() {
        let o = args(&["--builtin", "a.c"]).unwrap();
        assert!(o.prune, "pruning must default on");
        let o = args(&["--builtin", "--no-prune", "a.c"]).unwrap();
        assert!(!o.prune);
        let o = args(&["--builtin", "--no-prune", "--prune", "a.c"]).unwrap();
        assert!(o.prune, "later flag wins");
        assert!(USAGE.contains("--no-prune"));
    }

    #[test]
    fn interproc_flags_parse_and_default_off() {
        let o = args(&["--builtin", "a.c"]).unwrap();
        assert!(!o.interproc, "interproc must default off");
        let o = args(&["--builtin", "--interproc", "a.c"]).unwrap();
        assert!(o.interproc);
        let o = args(&["--builtin", "--interproc", "--no-interproc", "a.c"]).unwrap();
        assert!(!o.interproc, "later flag wins");
        assert!(USAGE.contains("--interproc"));
    }

    #[test]
    fn refute_flags_parse_and_default_on() {
        let o = args(&["--builtin", "a.c"]).unwrap();
        assert!(o.refute, "refutation must default on");
        let o = args(&["--builtin", "--no-refute", "a.c"]).unwrap();
        assert!(!o.refute);
        let o = args(&["--builtin", "--no-refute", "--refute", "a.c"]).unwrap();
        assert!(o.refute, "later flag wins");
        assert!(USAGE.contains("--no-refute"));
    }

    // End-to-end: the default `--refute` pass demotes a report whose
    // witness rides the classic infeasible credit/debit guard, and
    // `--no-refute` leaves it unchecked.
    #[test]
    fn refutation_demotes_infeasible_guard_report() {
        let dir = std::env::temp_dir().join(format!("mcheck_refute_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("h.c");
        std::fs::write(
            &src,
            "void h(void)\n{\n    int nak = 0;\n    nak = gNakCredit - gNakDebit;\n    \
             if (gNakCredit == gNakDebit) {\n        if (nak > 0) {\n            \
             MISCBUS_READ_DB(a, b);\n        }\n    }\n}\n",
        )
        .unwrap();
        let sm = dir.join("race.metal");
        std::fs::write(
            &sm,
            "sm race { decl { scalar } a, b; start: { MISCBUS_READ_DB(a, b); } ==> { err(\"raw read\"); } ; }",
        )
        .unwrap();
        let mut opts = args(&["--checker", sm.to_str().unwrap(), src.to_str().unwrap()]).unwrap();
        let reports = run(&opts).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].verdict, Verdict::Refuted);
        opts.refute = false;
        let reports = run(&opts).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].verdict, Verdict::Unchecked);
    }

    #[test]
    fn cache_cap_bytes_parses() {
        let o = args(&["--builtin", "--cache-cap-bytes", "65536", "a.c"]).unwrap();
        assert_eq!(o.cache_cap_bytes, Some(65536));
        let o = args(&["--builtin", "a.c"]).unwrap();
        assert_eq!(o.cache_cap_bytes, None, "unbounded by default");
        assert!(args(&["--builtin", "--cache-cap-bytes", "0", "a.c"]).is_err());
        assert!(args(&["--builtin", "--cache-cap-bytes", "big", "a.c"]).is_err());
        assert!(USAGE.contains("--cache-cap-bytes"));
    }

    #[test]
    fn no_prune_restores_correlated_branch_reports() {
        let dir = std::env::temp_dir().join("mcheck_prune_test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("corr.c");
        // The §6 correlated-branch shape: infeasible interleavings yield a
        // double free and a leak unless the feasibility analysis runs.
        std::fs::write(
            &src,
            "void PIHandler(void) {\n\
             if (gMode) { DB_FREE(); }\n\
             if (!gMode) { DB_FREE(); }\n\
             }\n",
        )
        .unwrap();
        let pruned = run(&args(&["--builtin", src.to_str().unwrap()]).unwrap()).unwrap();
        assert!(
            pruned.iter().all(|r| r.checker != "buffer_mgmt"),
            "default pruning refutes the correlated branches: {pruned:?}"
        );
        let unpruned = run(&args(&["--builtin", "--no-prune", src.to_str().unwrap()]).unwrap())
            .unwrap()
            .into_iter()
            .filter(|r| r.checker == "buffer_mgmt")
            .collect::<Vec<_>>();
        assert!(!unpruned.is_empty(), "--no-prune reports infeasible paths");
    }

    #[test]
    fn run_with_metal_checker_on_temp_files() {
        let dir = std::env::temp_dir().join("mcheck_test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("h.c");
        std::fs::write(&src, "void h(void) { MISCBUS_READ_DB(a, b); }").unwrap();
        let sm = dir.join("race.metal");
        std::fs::write(
            &sm,
            "sm race { decl { scalar } a, b; start: { MISCBUS_READ_DB(a, b); } ==> { err(\"raw read\"); } ; }",
        )
        .unwrap();
        let opts = args(&["--checker", sm.to_str().unwrap(), src.to_str().unwrap()]).unwrap();
        let reports = run(&opts).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].message, "raw read");
    }

    #[test]
    fn emit_corpus_writes_files() {
        let dir = std::env::temp_dir().join("mcheck_corpus_test");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = args(&["--emit-corpus", dir.to_str().unwrap(), "--seed", "7"]).unwrap();
        run(&opts).unwrap();
        assert!(dir.join("bitvector").join("spec.json").exists());
        assert!(dir.join("common").join("MANIFEST.tsv").exists());
        let any_c = std::fs::read_dir(dir.join("sci"))
            .unwrap()
            .any(|e| e.unwrap().file_name().to_string_lossy().ends_with(".c"));
        assert!(any_c);
    }

    #[test]
    fn spec_json_roundtrip() {
        let mut spec = FlashSpec::new();
        spec.free_routines.insert("f".into());
        spec.lane_quota.insert("h".into(), [1, 2, 3, 4]);
        let json = mc_json::to_string(&spec);
        let back: FlashSpec = mc_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;

    fn args(s: &[&str]) -> Result<Options, CliError> {
        parse_args(s.iter().map(|s| s.to_string()))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mcheck_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn cache_and_watch_flags_parse() {
        let o = args(&[
            "--builtin",
            "--cache-dir",
            "/tmp/c",
            "--watch",
            "--watch-interval",
            "50",
            "--watch-iterations",
            "2",
            "a.c",
        ])
        .unwrap();
        assert_eq!(o.cache_dir, Some(PathBuf::from("/tmp/c")));
        assert!(o.watch);
        assert_eq!(o.watch_interval_ms, 50);
        assert_eq!(o.watch_iterations, Some(2));
        assert!(!o.no_cache);

        let o = args(&["--builtin", "--cache-dir", "/tmp/c", "--no-cache", "a.c"]).unwrap();
        assert!(o.no_cache);
        assert!(args(&["--builtin", "--watch-iterations", "0", "a.c"]).is_err());
        assert!(USAGE.contains("--cache-dir") && USAGE.contains("--watch"));
    }

    #[test]
    fn invalidate_flag_parses() {
        let o = args(&["--builtin", "a.c"]).unwrap();
        assert_eq!(
            o.invalidate,
            Invalidation::Function,
            "function granularity is the default"
        );
        let o = args(&["--builtin", "--invalidate", "component", "a.c"]).unwrap();
        assert_eq!(o.invalidate, Invalidation::Component);
        let o = args(&["--builtin", "--invalidate", "function", "a.c"]).unwrap();
        assert_eq!(o.invalidate, Invalidation::Function);
        assert!(args(&["--builtin", "--invalidate", "file", "a.c"]).is_err());
        assert!(args(&["--builtin", "--invalidate"]).is_err());
        assert!(USAGE.contains("--invalidate"));
    }

    #[test]
    fn daemon_socket_flag_parses() {
        let o = args(&[
            "--builtin",
            "--watch",
            "--daemon-socket",
            "/tmp/mcheckd.sock",
            "a.c",
        ])
        .unwrap();
        assert_eq!(o.daemon_socket, Some(PathBuf::from("/tmp/mcheckd.sock")));
        let o = args(&["--builtin", "a.c"]).unwrap();
        assert_eq!(o.daemon_socket, None);
        assert!(args(&["--builtin", "--daemon-socket"]).is_err());
        assert!(USAGE.contains("--daemon-socket"));
    }

    #[test]
    fn exit_codes_zero_one() {
        assert_eq!(exit_code(&[]), 0);
        let r = Report::warning("c", "f.c", "g", mc_ast::Span::new(1, 1), "m");
        assert_eq!(exit_code(&[r]), 1);
        assert!(USAGE.contains("exit codes"));
    }

    #[test]
    fn cached_run_matches_uncached_and_survives_corruption() {
        let dir = temp_dir("cache_eq");
        let src = dir.join("h.c");
        std::fs::write(
            &src,
            "void h(void) { MISCBUS_READ_DB(a, b); DB_FREE(); DB_FREE(); }",
        )
        .unwrap();
        let cache = dir.join("cache");
        let plain = args(&["--builtin", src.to_str().unwrap()]).unwrap();
        let cached = args(&[
            "--builtin",
            "--cache-dir",
            cache.to_str().unwrap(),
            src.to_str().unwrap(),
        ])
        .unwrap();

        let uncached_reports = run(&plain).unwrap();
        let cold = run(&cached).unwrap();
        let warm = run(&cached).unwrap();
        assert_eq!(cold, uncached_reports);
        assert_eq!(warm, uncached_reports);
        assert!(
            cache.read_dir().unwrap().next().is_some(),
            "records written"
        );

        // Corrupt every record: the run degrades to cold and still succeeds.
        for entry in cache.read_dir().unwrap() {
            std::fs::write(entry.unwrap().path(), "not json {{{").unwrap();
        }
        let after_corruption = run(&cached).unwrap();
        assert_eq!(after_corruption, uncached_reports);

        // --no-cache bypasses the (now re-written) cache entirely.
        let bypass = args(&[
            "--builtin",
            "--cache-dir",
            cache.to_str().unwrap(),
            "--no-cache",
            src.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(run(&bypass).unwrap(), uncached_reports);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watch_single_cycle_reports_and_returns() {
        let dir = temp_dir("watch");
        let src = dir.join("w.c");
        std::fs::write(&src, "void w(void) { MISCBUS_READ_DB(a, b); }").unwrap();
        let mut opts = args(&["--builtin", "--watch", src.to_str().unwrap()]).unwrap();
        opts.watch_iterations = Some(1);
        let mut out = Vec::new();
        run_watch(&opts, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("[watch] checked 1 file(s)"), "{text}");
        assert!(text.contains("wait_for_db"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Regression (debounce): an editor save immediately followed by a
    // formatter rewrite must coalesce into ONE re-check that sees the
    // final content — not one re-check per write.
    #[test]
    fn watch_coalesces_rapid_edit_bursts() {
        let dir = temp_dir("debounce");
        let src = dir.join("d.c");
        std::fs::write(&src, "void d(void) { a(); }").unwrap();
        let mut opts = args(&["--builtin", "--watch", src.to_str().unwrap()]).unwrap();
        opts.watch_interval_ms = 50;
        opts.watch_iterations = Some(2);
        let src2 = src.clone();
        let writer = std::thread::spawn(move || {
            // The save...
            std::thread::sleep(std::time::Duration::from_millis(150));
            std::fs::write(&src2, "void d(void) { b(); }").unwrap();
            // ...and the formatter rewrite, well inside the next poll
            // interval.
            std::thread::sleep(std::time::Duration::from_millis(20));
            std::fs::write(&src2, "void d(void) { MISCBUS_READ_DB(a, b); }").unwrap();
        });
        let mut out = Vec::new();
        run_watch(&opts, &mut out).unwrap();
        writer.join().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text.matches("[watch] checked").count(),
            2,
            "initial check + one coalesced re-check: {text}"
        );
        assert!(
            text.contains("wait_for_db"),
            "the re-check saw the burst's final content: {text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watch_poll_detects_content_changes_only() {
        let dir = temp_dir("poll");
        let src = dir.join("p.c");
        std::fs::write(&src, "void p(void) { a(); }").unwrap();
        let files = vec![src.clone()];
        let mut snaps = vec![snap_of(&src)];

        assert!(!poll_changed(&files, &mut snaps), "no change yet");

        // Rewrite with identical bytes (a `touch`): stat changes, content
        // does not — no re-check.
        std::thread::sleep(std::time::Duration::from_millis(20));
        std::fs::write(&src, "void p(void) { a(); }").unwrap();
        assert!(!poll_changed(&files, &mut snaps), "identical bytes");

        // A transiently missing file does not trigger.
        std::fs::remove_file(&src).unwrap();
        assert!(!poll_changed(&files, &mut snaps), "missing file");

        // Real content change triggers once.
        std::fs::write(&src, "void p(void) { b(); }").unwrap();
        assert!(poll_changed(&files, &mut snaps), "content changed");
        assert!(!poll_changed(&files, &mut snaps), "already seen");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod format_tests {
    use super::*;

    #[test]
    fn format_flag_parses() {
        let o = parse_args(["--builtin", "--format", "json", "a.c"].map(String::from)).unwrap();
        assert_eq!(o.format, Format::Json);
        let o = parse_args(["--builtin", "--format", "text", "a.c"].map(String::from)).unwrap();
        assert_eq!(o.format, Format::Text);
        let o = parse_args(["--builtin", "--format", "sarif", "a.c"].map(String::from)).unwrap();
        assert_eq!(o.format, Format::Sarif);
        assert!(parse_args(["--builtin", "--format", "xml", "a.c"].map(String::from)).is_err());
        assert!(USAGE.contains("sarif"));
    }

    #[test]
    fn baseline_flag_parses() {
        let o = parse_args(["--builtin", "--baseline", "b.json", "a.c"].map(String::from)).unwrap();
        assert_eq!(o.baseline, Some(PathBuf::from("b.json")));
        let o = parse_args(["--builtin", "a.c"].map(String::from)).unwrap();
        assert_eq!(o.baseline, None);
        assert!(parse_args(["--builtin", "--baseline"].map(String::from)).is_err());
        assert!(USAGE.contains("--baseline"));
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mcheck_full_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn run_full_baseline_roundtrip_exits_zero() {
        let dir = temp_dir("baseline");
        let src = dir.join("h.c");
        std::fs::write(&src, "void h(void) { MISCBUS_READ_DB(a, b); }").unwrap();
        let baseline = dir.join("baseline.json");
        let opts = parse_args(
            [
                "--builtin",
                "--baseline",
                baseline.to_str().unwrap(),
                src.to_str().unwrap(),
            ]
            .map(String::from),
        )
        .unwrap();

        // First run writes the baseline and exits 0 despite reports.
        let (mut out, mut err) = (Vec::new(), Vec::new());
        let code = run_full(&opts, &mut out, &mut err).unwrap();
        assert_eq!(code, 0);
        assert!(baseline.exists());
        assert!(String::from_utf8(err).unwrap().contains("baseline: wrote"));
        assert!(String::from_utf8(out).unwrap().contains("wait_for_db"));

        // Unchanged second run: every report is known, exit 0, no output.
        let (mut out, mut err) = (Vec::new(), Vec::new());
        let code = run_full(&opts, &mut out, &mut err).unwrap();
        assert_eq!(code, 0, "baseline round-trip must exit 0");
        let err = String::from_utf8(err).unwrap();
        assert!(err.contains("0 new"), "{err}");
        assert!(String::from_utf8(out).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_full_counts_suppressions_and_keeps_exit_zero() {
        let dir = temp_dir("suppress");
        let src = dir.join("s.c");
        std::fs::write(
            &src,
            "void s(void) { // mc-suppress: exec_restrict\n  \
             MISCBUS_READ_DB(a, b); // mc-suppress: wait_for_db\n}\n",
        )
        .unwrap();
        let opts = parse_args(["--builtin", src.to_str().unwrap()].map(String::from)).unwrap();
        let (mut out, mut err) = (Vec::new(), Vec::new());
        let code = run_full(&opts, &mut out, &mut err).unwrap();
        assert_eq!(code, 0, "every report is suppressed");
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("2 report(s) suppressed"), "{out}");
        assert!(!out.contains("wait_for_db"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Regression: `// mc-suppress: metal-load` comments inside a checker
    // (.metal) file must silence that file's load-time validation warnings.
    // The suppression matcher only saw the checked C sources, so metal-load
    // reports — whose file is the checker path — could never be suppressed.
    #[test]
    fn run_full_honors_suppress_comments_in_metal_checker_files() {
        let dir = temp_dir("metal_suppress");
        let src = dir.join("h.c");
        std::fs::write(&src, "void h(void) { f(a); }\n").unwrap();
        let sm = dir.join("u.metal");
        let orphan = "    orphan: { g(x); } ==> { err(\"never\"); } ;\n}\n";
        let head = "sm u {\n    decl { scalar } x;\n    start: { f(x); } ==> stop ;\n";
        std::fs::write(&sm, format!("{head}{orphan}")).unwrap();
        let opts = parse_args(
            ["--checker", sm.to_str().unwrap(), src.to_str().unwrap()].map(String::from),
        )
        .unwrap();
        let (mut out, mut err) = (Vec::new(), Vec::new());
        let code = run_full(&opts, &mut out, &mut err).unwrap();
        assert_eq!(code, 1, "the unreachable-state warning must surface");
        let shown = String::from_utf8(out).unwrap();
        assert!(shown.contains("unreachable"), "{shown}");

        std::fs::write(
            &sm,
            format!("{head}    // mc-suppress: metal-load\n{orphan}"),
        )
        .unwrap();
        let (mut out, mut err) = (Vec::new(), Vec::new());
        let code = run_full(&opts, &mut out, &mut err).unwrap();
        assert_eq!(code, 0, "suppressed warning must not drive the exit code");
        let shown = String::from_utf8(out).unwrap();
        assert!(shown.contains("1 report(s) suppressed"), "{shown}");
        assert!(!shown.contains("unreachable"), "{shown}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // End-to-end refutation through run_full: the refuted report vanishes
    // from the text output, a note states the count, and `--no-refute`
    // restores the report.
    #[test]
    fn run_full_drops_refuted_reports_and_notes_the_count() {
        let dir = temp_dir("refuted");
        let src = dir.join("r.c");
        std::fs::write(
            &src,
            "void r(void)\n{\n    PROC_DEFS();\n    PROC_PROLOGUE();\n    int nak = 0;\n    \
             nak = gNakCredit - gNakDebit;\n    \
             if (gNakCredit == gNakDebit) {\n        if (nak > 0) {\n            \
             MISCBUS_READ_DB(a, b);\n        }\n    }\n}\n",
        )
        .unwrap();
        let base = ["--builtin", src.to_str().unwrap()];
        let opts = parse_args(base.map(String::from)).unwrap();
        let (mut out, mut err) = (Vec::new(), Vec::new());
        let code = run_full(&opts, &mut out, &mut err).unwrap();
        assert_eq!(code, 0, "the only report is refuted");
        let shown = String::from_utf8(out).unwrap();
        assert!(
            shown.contains("1 report(s) refuted by symbolic witness analysis"),
            "{shown}"
        );
        assert!(!shown.contains("wait_for_db"), "{shown}");

        let mut opts = parse_args(base.map(String::from)).unwrap();
        opts.refute = false;
        let (mut out, mut err) = (Vec::new(), Vec::new());
        let code = run_full(&opts, &mut out, &mut err).unwrap();
        assert_eq!(code, 1, "--no-refute keeps the report");
        let shown = String::from_utf8(out).unwrap();
        assert!(shown.contains("wait_for_db"), "{shown}");
        assert!(!shown.contains("report(s) refuted"), "{shown}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_full_text_shows_excerpt_and_witness() {
        let dir = temp_dir("excerpt");
        let src = dir.join("e.c");
        std::fs::write(&src, "void e(void) {\n  MISCBUS_READ_DB(a, b);\n}\n").unwrap();
        let opts = parse_args(["--builtin", src.to_str().unwrap()].map(String::from)).unwrap();
        let (mut out, mut err) = (Vec::new(), Vec::new());
        let code = run_full(&opts, &mut out, &mut err).unwrap();
        assert_eq!(code, 1);
        let out = String::from_utf8(out).unwrap();
        assert!(
            out.contains("| MISCBUS_READ_DB") || out.contains("|   MISCBUS_READ_DB"),
            "{out}"
        );
        assert!(out.contains("    1. "), "witness path rendered: {out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reports_serialize_to_json() {
        let r = mc_driver::Report::error("c", "f.c", "g", mc_ast::Span::new(3, 4), "m");
        let json = mc_json::to_string(&r);
        assert!(json.contains("\"severity\":\"error\""));
        assert!(json.contains("\"line\":3"));
        let back: mc_driver::Report = mc_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}

#[cfg(test)]
mod metal_engine_tests {
    use super::*;

    fn args(s: &[&str]) -> Result<Options, CliError> {
        parse_args(s.iter().map(|s| s.to_string()))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mcheck_engine_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn metal_engine_flag_parses() {
        let o = args(&["--builtin", "a.c"]).unwrap();
        assert_eq!(
            o.metal_engine,
            MetalEngine::Compiled,
            "compiled is the default"
        );
        let o = args(&["--builtin", "--metal-engine", "interp", "a.c"]).unwrap();
        assert_eq!(o.metal_engine, MetalEngine::Interp);
        let o = args(&["--builtin", "--metal-engine", "compiled", "a.c"]).unwrap();
        assert_eq!(o.metal_engine, MetalEngine::Compiled);
        assert!(args(&["--builtin", "--metal-engine", "jit", "a.c"]).is_err());
        assert!(args(&["--builtin", "--metal-engine"]).is_err());
        assert!(USAGE.contains("--metal-engine"));
    }

    #[test]
    fn both_engines_produce_identical_reports() {
        let dir = temp_dir("parity");
        let src = dir.join("h.c");
        std::fs::write(
            &src,
            "void h(void) { MISCBUS_READ_DB(a, b); DB_FREE(); DB_FREE(); }",
        )
        .unwrap();
        let compiled = run(&args(&["--builtin", src.to_str().unwrap()]).unwrap()).unwrap();
        let interp = run(&args(&[
            "--builtin",
            "--metal-engine",
            "interp",
            src.to_str().unwrap(),
        ])
        .unwrap())
        .unwrap();
        assert_eq!(compiled, interp);
        assert!(!compiled.is_empty(), "the planted bugs are found");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A checker whose `limbo` state no rule ever reaches: loading it must
    /// warn, pointing at the offending `sm` rule's file and line.
    const DEAD_STATE_SM: &str = "\
sm dead {
    decl { scalar } x;
    start: { f(x) } ==> { err(\"f\"); } ;
    limbo: { g(x) } ==> { err(\"g\"); } ;
}
";

    #[test]
    fn load_diagnostics_render_as_text_with_file_and_line() {
        let dir = temp_dir("diag_text");
        let src = dir.join("h.c");
        std::fs::write(&src, "void h(void) { f(y); }").unwrap();
        let sm = dir.join("dead.metal");
        std::fs::write(&sm, DEAD_STATE_SM).unwrap();
        let opts = args(&["--checker", sm.to_str().unwrap(), src.to_str().unwrap()]).unwrap();
        let (mut out, mut err) = (Vec::new(), Vec::new());
        run_full(&opts, &mut out, &mut err).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("[unreachable-state]"), "{out}");
        assert!(
            out.contains(&format!("{}:4:", sm.display())),
            "diagnostic points at the `limbo:` rule's file:line — {out}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_diagnostics_render_as_json() {
        let dir = temp_dir("diag_json");
        let src = dir.join("h.c");
        std::fs::write(&src, "void h(void) { g(y); }").unwrap();
        let sm = dir.join("dead.metal");
        std::fs::write(&sm, DEAD_STATE_SM).unwrap();
        let opts = args(&[
            "--checker",
            sm.to_str().unwrap(),
            "--format",
            "json",
            src.to_str().unwrap(),
        ])
        .unwrap();
        let (mut out, mut err) = (Vec::new(), Vec::new());
        run_full(&opts, &mut out, &mut err).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("unreachable-state"), "{out}");
        assert!(out.contains("metal-load"), "{out}");
        assert!(
            out.contains("\"line\": 4") || out.contains("\"line\":4"),
            "{out}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watch_surfaces_load_diagnostics() {
        let dir = temp_dir("diag_watch");
        let src = dir.join("h.c");
        std::fs::write(&src, "void h(void) { f(y); }").unwrap();
        let sm = dir.join("dead.metal");
        std::fs::write(&sm, DEAD_STATE_SM).unwrap();
        let mut opts = args(&[
            "--checker",
            sm.to_str().unwrap(),
            "--watch",
            src.to_str().unwrap(),
        ])
        .unwrap();
        opts.watch_iterations = Some(1);
        let mut out = Vec::new();
        run_watch(&opts, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("[unreachable-state]"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
