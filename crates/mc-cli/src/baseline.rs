//! Fingerprint baselines: accept a known set of reports so CI only fails
//! on *new* findings.
//!
//! `mcheck --baseline known.json …` is two tools in one flag:
//!
//! * the file does **not** exist — the run's reports are written to it as
//!   a baseline and the run exits 0 (nothing was compared, nothing is
//!   "new");
//! * the file exists — reports whose [`Report::fingerprint`] appears in
//!   the baseline are filtered out before rendering, and the run exits 0
//!   exactly when no new report remains. Baseline entries that no longer
//!   match any report are counted as *resolved* so a stale baseline is
//!   visible.
//!
//! The file format is a small JSON document; alongside each fingerprint
//! it stores the checker/file/message it stood for, so a baseline diff in
//! review is readable without running the tool:
//!
//! ```json
//! {
//!   "schema": "mcheck-baseline",
//!   "version": 1,
//!   "reports": [
//!     {"fingerprint": "9f86d081884c7d65", "checker": "buffer_mgmt",
//!      "file": "sci/sci_main.c", "message": "len used after DB_FREE"}
//!   ]
//! }
//! ```

use crate::CliError;
use mc_driver::Report;
use mc_json::{FromJson, Json, JsonError, ToJson};
use std::collections::BTreeSet;
use std::path::Path;

/// One remembered report in a baseline file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// The report's stable content fingerprint (the comparison key).
    pub fingerprint: String,
    /// Checker that produced it (context for human readers only).
    pub checker: String,
    /// File it was in (context only).
    pub file: String,
    /// Its message (context only).
    pub message: String,
}

impl ToJson for BaselineEntry {
    fn to_json(&self) -> Json {
        mc_json::object(vec![
            ("fingerprint", self.fingerprint.to_json()),
            ("checker", self.checker.to_json()),
            ("file", self.file.to_json()),
            ("message", self.message.to_json()),
        ])
    }
}

impl FromJson for BaselineEntry {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(BaselineEntry {
            fingerprint: mc_json::field(v, "fingerprint")?,
            checker: mc_json::field_or_default(v, "checker")?,
            file: mc_json::field_or_default(v, "file")?,
            message: mc_json::field_or_default(v, "message")?,
        })
    }
}

/// A loaded (or freshly built) baseline.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Baseline {
    /// The remembered reports, in report order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Builds a baseline from the current run's reports.
    pub fn from_reports(reports: &[Report]) -> Baseline {
        Baseline {
            entries: reports
                .iter()
                .map(|r| BaselineEntry {
                    fingerprint: r.fingerprint(),
                    checker: r.checker.clone(),
                    file: r.file.clone(),
                    message: r.message.clone(),
                })
                .collect(),
        }
    }

    /// The set of remembered fingerprints.
    pub fn fingerprints(&self) -> BTreeSet<&str> {
        self.entries
            .iter()
            .map(|e| e.fingerprint.as_str())
            .collect()
    }
}

impl ToJson for Baseline {
    fn to_json(&self) -> Json {
        mc_json::object(vec![
            ("schema", Json::Str("mcheck-baseline".into())),
            ("version", Json::Int(1)),
            ("reports", self.entries.to_json()),
        ])
    }
}

impl FromJson for Baseline {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if v.get("schema").and_then(Json::as_str) != Some("mcheck-baseline") {
            return Err(JsonError::expected("schema \"mcheck-baseline\""));
        }
        Ok(Baseline {
            entries: mc_json::field(v, "reports")?,
        })
    }
}

/// What a `--baseline` run did, for the caller to report and turn into an
/// exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineOutcome {
    /// The file did not exist; it was written with this many entries.
    Written(usize),
    /// The file existed and was compared against the run.
    Compared {
        /// Reports filtered out because their fingerprint was remembered.
        known: usize,
        /// Baseline entries that matched no current report.
        resolved: usize,
    },
}

/// Applies `--baseline <path>` to a run's reports: writes the file when it
/// is missing, filters known fingerprints out of `reports` when it exists.
///
/// # Errors
///
/// Returns [`CliError`] when the file cannot be read, parsed, or written —
/// a corrupt baseline must fail loudly, never silently accept everything.
pub fn apply_baseline(path: &Path, reports: &mut Vec<Report>) -> Result<BaselineOutcome, CliError> {
    if !path.exists() {
        let baseline = Baseline::from_reports(reports);
        let n = baseline.entries.len();
        std::fs::write(path, baseline.to_json().to_pretty())
            .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
        return Ok(BaselineOutcome::Written(n));
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("{}: {e}", path.display())))?;
    let baseline: Baseline = mc_json::from_str(&text)
        .map_err(|e| CliError(format!("{}: bad baseline: {e}", path.display())))?;
    let known_fps = baseline.fingerprints();
    let current: BTreeSet<String> = reports.iter().map(Report::fingerprint).collect();
    let resolved = known_fps
        .iter()
        .filter(|fp| !current.contains(**fp))
        .count();
    let before = reports.len();
    reports.retain(|r| !known_fps.contains(r.fingerprint().as_str()));
    Ok(BaselineOutcome::Compared {
        known: before - reports.len(),
        resolved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_ast::Span;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mcheck_baseline_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("baseline.json")
    }

    fn reports() -> Vec<Report> {
        vec![
            Report::error("a", "f.c", "g", Span::new(1, 1), "first"),
            Report::error("b", "f.c", "g", Span::new(2, 1), "second"),
        ]
    }

    #[test]
    fn missing_file_writes_then_next_run_is_clean() {
        let path = temp_path("roundtrip");
        let mut first = reports();
        let outcome = apply_baseline(&path, &mut first).unwrap();
        assert_eq!(outcome, BaselineOutcome::Written(2));
        assert_eq!(first.len(), 2, "writing must not drop the run's reports");

        // Unchanged second run: everything is known, nothing resolved.
        let mut second = reports();
        let outcome = apply_baseline(&path, &mut second).unwrap();
        assert_eq!(
            outcome,
            BaselineOutcome::Compared {
                known: 2,
                resolved: 0
            }
        );
        assert!(second.is_empty());
    }

    #[test]
    fn new_and_resolved_reports_are_counted() {
        let path = temp_path("delta");
        let mut first = reports();
        apply_baseline(&path, &mut first).unwrap();

        // Second run: "first" is gone (resolved), "third" is new.
        let mut second = vec![
            Report::error("b", "f.c", "g", Span::new(2, 1), "second"),
            Report::error("c", "f.c", "g", Span::new(3, 1), "third"),
        ];
        let outcome = apply_baseline(&path, &mut second).unwrap();
        assert_eq!(
            outcome,
            BaselineOutcome::Compared {
                known: 1,
                resolved: 1
            }
        );
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].message, "third");
    }

    #[test]
    fn fingerprint_survives_line_drift_in_comparison() {
        let path = temp_path("drift");
        let mut first = reports();
        apply_baseline(&path, &mut first).unwrap();
        // Same reports, shifted down the file: still known.
        let mut shifted: Vec<Report> = reports()
            .into_iter()
            .map(|mut r| {
                r.span = Span::new(r.span.line + 40, r.span.col);
                r
            })
            .collect();
        let outcome = apply_baseline(&path, &mut shifted).unwrap();
        assert_eq!(
            outcome,
            BaselineOutcome::Compared {
                known: 2,
                resolved: 0
            }
        );
        assert!(shifted.is_empty());
    }

    #[test]
    fn corrupt_baseline_is_a_loud_error() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(apply_baseline(&path, &mut reports()).is_err());
        std::fs::write(&path, r#"{"schema":"other","version":1,"reports":[]}"#).unwrap();
        assert!(apply_baseline(&path, &mut reports()).is_err());
    }
}
