//! The `mcheckd` check daemon: a persistent server that keeps one
//! [`CheckEngine`] hot in memory so every editor save and CI query pays
//! only the function-granular red/green re-check, never process startup
//! or a cold cache.
//!
//! ## Protocol
//!
//! Newline-delimited JSON-RPC over a unix domain socket. Each request is
//! one line:
//!
//! ```json
//! {"id": 1, "method": "check", "params": {"files": ["/abs/path.c"]}}
//! ```
//!
//! and each response is one line, `{"id": 1, "result": ...}` on success
//! or `{"id": 1, "error": "message"}` on failure. Methods:
//!
//! * `check` — check the given files (absolute paths; defaults to the
//!   files the daemon was started with). An optional `"jobs"` hint sets
//!   the worker count for this request only (the daemon's configured
//!   count otherwise); the effective value is echoed back in the stats.
//!   Worker count never affects report bytes, only latency. The result
//!   carries the `mcheck-reports` envelope under `"reports"`, engine
//!   counters under `"stats"`, and the batch exit code under `"exit"`.
//! * `invalidate` — drop the engine's in-memory memo tables (the disk
//!   cache, if any, is untouched); the next check revalidates everything.
//! * `subscribe` — register this connection for push diagnostics: after
//!   every completed check (from any client) the daemon writes one line
//!   `{"method": "diagnostics", "params": <envelope>}` to it.
//! * `shutdown` — unlink the socket and exit after responding.
//!
//! The reports in every envelope are byte-identical to a cold batch
//! `mcheck` run over the same files — the daemon is a transport, never a
//! second analysis pipeline.
//!
//! ## Socket lifecycle
//!
//! `serve` refuses to start when another daemon is alive on the socket
//! (connecting succeeds), and silently reaps a stale socket file whose
//! daemon died (connecting fails). Clients that find no listener fall
//! back to spawning `mcheckd serve` themselves (`connect_or_spawn`), so
//! the first `--watch` or `mcheckd check` of a session transparently
//! becomes the daemon's parent.

use crate::{build_driver, checked_reports, engine_for, json_envelope, CliError, Options};
use mc_driver::{CheckEngine, Driver};
use mc_json::Json;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Usage text for the `mcheckd` binary.
pub const DAEMON_USAGE: &str = "\
usage: mcheckd <serve|check|invalidate|shutdown> --socket <path> [OPTIONS] [file.c...]

  serve       run the daemon: bind the socket, keep a hot CheckEngine,
              answer JSON-RPC requests until `shutdown`. Takes the same
              options as mcheck (--builtin, --checker, --cache-dir, ...);
              they fix the daemon's checker configuration.
  check       send a check request for the given files (spawns a daemon
              with the same options when none is listening). Prints the
              mcheck-reports JSON envelope; exits 0/1 like mcheck.
  invalidate  drop the daemon's in-memory memo tables
  shutdown    stop the daemon and remove the socket (exit 0 if none runs)

exit codes: 0 ran clean, 1 reports were emitted, 2 usage or I/O error";

/// Shared server state: one driver + engine pair (the analysis identity
/// of this daemon, fixed at `serve` time) and the subscriber list. The
/// driver sits behind a mutex only so per-request `jobs` hints can be
/// applied; nothing about its checker suite ever changes.
struct State {
    driver: Mutex<Driver>,
    engine: Mutex<CheckEngine>,
    opts: Options,
    socket: PathBuf,
    subscribers: Mutex<Vec<Arc<Mutex<UnixStream>>>>,
}

/// Binds `socket`, refusing when a live daemon already owns it and
/// reaping it when its owner died.
fn bind_socket(socket: &Path) -> Result<UnixListener, CliError> {
    match UnixListener::bind(socket) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
            if UnixStream::connect(socket).is_ok() {
                return Err(CliError(format!(
                    "{}: an mcheckd daemon is already listening here",
                    socket.display()
                )));
            }
            // The socket file outlived its daemon: reap and rebind.
            std::fs::remove_file(socket)
                .map_err(|e| CliError(format!("{}: {e}", socket.display())))?;
            UnixListener::bind(socket).map_err(|e| CliError(format!("{}: {e}", socket.display())))
        }
        Err(e) => Err(CliError(format!("{}: {e}", socket.display()))),
    }
}

/// Runs the daemon on `socket` until a client sends `shutdown`. The
/// options fix the checker suite, cache directory, and invalidation mode
/// for every request this daemon will serve.
///
/// # Errors
///
/// Returns [`CliError`] when the socket cannot be bound (including a live
/// daemon already owning it) or the options describe an unbuildable
/// driver.
pub fn serve(opts: &Options, socket: &Path) -> Result<(), CliError> {
    let listener = bind_socket(socket)?;
    let state = Arc::new(State {
        driver: Mutex::new(build_driver(opts)?),
        engine: Mutex::new(engine_for(opts)?),
        opts: opts.clone(),
        socket: socket.to_path_buf(),
        subscribers: Mutex::new(Vec::new()),
    });
    for conn in listener.incoming() {
        let Ok(conn) = conn else { continue };
        let state = Arc::clone(&state);
        std::thread::spawn(move || serve_client(conn, &state));
    }
    Ok(())
}

/// One client connection: read request lines, write response lines. The
/// write half is shared (via `Arc<Mutex<_>>`) with the diagnostics
/// pusher once the client subscribes, so responses and pushes never
/// interleave mid-line.
fn serve_client(conn: UnixStream, state: &Arc<State>) {
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(conn));
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (id, outcome, shutdown) = dispatch(&line, state, &writer);
        let response = match outcome {
            Ok(result) => Json::Object(vec![("id".into(), id), ("result".into(), result)]),
            Err(msg) => Json::Object(vec![("id".into(), id), ("error".into(), Json::Str(msg))]),
        };
        {
            let mut w = writer.lock().unwrap();
            if writeln!(w, "{}", response.to_compact()).is_err() {
                break;
            }
            let _ = w.flush();
        }
        if shutdown {
            let _ = std::fs::remove_file(&state.socket);
            std::process::exit(0);
        }
    }
}

/// Parses and executes one request line. Returns the echoed id, the
/// result-or-error, and whether the daemon should exit after replying.
fn dispatch(
    line: &str,
    state: &Arc<State>,
    writer: &Arc<Mutex<UnixStream>>,
) -> (Json, Result<Json, String>, bool) {
    let req = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return (Json::Null, Err(format!("bad request: {e}")), false),
    };
    let id = req.get("id").cloned().unwrap_or(Json::Null);
    let method = req.get("method").and_then(Json::as_str).unwrap_or("");
    match method {
        "check" => (id, do_check(state, req.get("params")), false),
        "invalidate" => {
            let fresh = match engine_for(&state.opts) {
                Ok(e) => e,
                Err(e) => return (id, Err(e.to_string()), false),
            };
            *state.engine.lock().unwrap() = fresh;
            (id, Ok(ok_result()), false)
        }
        "subscribe" => {
            state.subscribers.lock().unwrap().push(Arc::clone(writer));
            (id, Ok(ok_result()), false)
        }
        "shutdown" => (id, Ok(ok_result()), true),
        other => (id, Err(format!("unknown method `{other}`")), false),
    }
}

fn ok_result() -> Json {
    Json::Object(vec![("ok".into(), Json::Bool(true))])
}

/// Executes a `check` request: read the sources, run the hot engine, and
/// package the envelope + stats. Pushes the envelope to every subscriber
/// before replying.
fn do_check(state: &Arc<State>, params: Option<&Json>) -> Result<Json, String> {
    let files: Vec<PathBuf> = match params.and_then(|p| p.get("files")).and_then(Json::as_array) {
        Some(items) => items
            .iter()
            .map(|v| {
                v.as_str()
                    .map(PathBuf::from)
                    .ok_or_else(|| "params.files must be an array of strings".to_string())
            })
            .collect::<Result<_, _>>()?,
        None => state.opts.files.clone(),
    };
    if files.is_empty() {
        return Err("no files to check".into());
    }
    // An optional per-request worker-count hint; the daemon's configured
    // count (its serve-time --jobs, or the parallelism default) applies
    // when absent. Invalid hints are request errors, not silently ignored.
    let jobs_hint = match params.and_then(|p| p.get("jobs")) {
        None | Some(Json::Null) => None,
        Some(v) => match v.as_i64() {
            Some(n) if n >= 1 => Some(n as usize),
            _ => return Err("params.jobs must be a positive integer".into()),
        },
    };
    let mut opts = state.opts.clone();
    opts.files = files;
    let (reports, suppressed, refuted, stats, effective_jobs) = {
        // Lock order: driver, then engine — both are held for the whole
        // check so a concurrent request cannot swap the jobs hint mid-run.
        let mut driver = state.driver.lock().unwrap();
        driver.set_jobs(jobs_hint.or(state.opts.jobs));
        let sources = crate::read_sources(&opts.files).map_err(|e| e.to_string())?;
        let mut engine = state.engine.lock().unwrap();
        let out =
            checked_reports(&driver, &mut engine, &opts, &sources).map_err(|e| e.to_string())?;
        (out.0, out.1, out.2, out.3, driver.effective_jobs())
    };
    let envelope = json_envelope(&reports, suppressed, refuted);
    push_diagnostics(state, &envelope);
    Ok(Json::Object(vec![
        ("reports".into(), envelope),
        (
            "stats".into(),
            mc_json::object(vec![
                ("units", Json::Int(stats.units as i64)),
                ("units_checked", Json::Int(stats.units_checked as i64)),
                (
                    "functions_rechecked",
                    Json::Int(stats.functions_rechecked as i64),
                ),
                (
                    "functions_replayed",
                    Json::Int(stats.functions_replayed as i64),
                ),
                ("jobs", Json::Int(effective_jobs as i64)),
            ]),
        ),
        ("exit".into(), Json::Int(i64::from(!reports.is_empty()))),
    ]))
}

/// Writes one `diagnostics` notification line to every subscriber,
/// dropping subscribers whose connection is gone.
fn push_diagnostics(state: &Arc<State>, envelope: &Json) {
    let note = Json::Object(vec![
        ("method".into(), Json::Str("diagnostics".into())),
        ("params".into(), envelope.clone()),
    ])
    .to_compact();
    state.subscribers.lock().unwrap().retain(|sub| {
        let mut w = sub.lock().unwrap();
        writeln!(w, "{note}").and_then(|()| w.flush()).is_ok()
    });
}

/// A connected client: line-oriented request/response over the socket.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    next_id: i64,
}

impl Client {
    /// Connects to a daemon already listening on `socket`.
    ///
    /// # Errors
    ///
    /// Propagates the connect error (no listener, permissions, ...).
    pub fn connect(socket: &Path) -> std::io::Result<Client> {
        let writer = UnixStream::connect(socket)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            next_id: 1,
        })
    }

    /// Connects to `socket`, spawning `mcheckd serve` (configured from
    /// `opts`) first when nothing is listening — the fall-back that makes
    /// the daemon self-hosting: whoever asks first becomes its parent.
    ///
    /// The daemon binary is `$MCHECKD_BIN` when set, the current
    /// executable when it *is* mcheckd, or an `mcheckd` sibling of the
    /// current executable otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] when spawning fails or the daemon does not
    /// come up within the grace period.
    pub fn connect_or_spawn(socket: &Path, opts: &Options) -> Result<Client, CliError> {
        if let Ok(client) = Client::connect(socket) {
            return Ok(client);
        }
        let bin = daemon_binary()?;
        let mut cmd = std::process::Command::new(&bin);
        cmd.arg("serve")
            .arg("--socket")
            .arg(socket)
            .args(config_args(opts))
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null());
        cmd.spawn()
            .map_err(|e| CliError(format!("spawning {}: {e}", bin.display())))?;
        // The daemon builds its driver before binding; give it a moment.
        for _ in 0..100 {
            std::thread::sleep(std::time::Duration::from_millis(50));
            if let Ok(client) = Client::connect(socket) {
                return Ok(client);
            }
        }
        Err(CliError(format!(
            "{}: daemon did not come up after spawn",
            socket.display()
        )))
    }

    /// Sends one request and reads its response line. Returns the
    /// `result` value, or an error carrying the daemon's `error` string.
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] on transport failure, an unparsable response,
    /// or a daemon-side error.
    pub fn request(&mut self, method: &str, params: Json) -> Result<Json, CliError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Json::Object(vec![
            ("id".into(), Json::Int(id)),
            ("method".into(), Json::Str(method.into())),
            ("params".into(), params),
        ]);
        writeln!(self.writer, "{}", req.to_compact())
            .and_then(|()| self.writer.flush())
            .map_err(|e| CliError(format!("daemon request: {e}")))?;
        // Skip any interleaved push notifications (they carry no "id").
        loop {
            let mut line = String::new();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| CliError(format!("daemon response: {e}")))?;
            if n == 0 {
                return Err(CliError("daemon closed the connection".into()));
            }
            let resp = Json::parse(line.trim())
                .map_err(|e| CliError(format!("bad daemon response: {e}")))?;
            if resp.get("id").and_then(Json::as_i64) != Some(id) {
                continue;
            }
            if let Some(msg) = resp.get("error").and_then(Json::as_str) {
                return Err(CliError(format!("daemon: {msg}")));
            }
            return resp
                .get("result")
                .cloned()
                .ok_or_else(|| CliError("daemon response has no result".into()));
        }
    }
}

/// Resolves the daemon binary for spawn fall-back: `$MCHECKD_BIN`, the
/// current executable when it is mcheckd itself, or its `mcheckd`
/// sibling (the cargo layout installs both binaries side by side).
fn daemon_binary() -> Result<PathBuf, CliError> {
    if let Some(bin) = std::env::var_os("MCHECKD_BIN") {
        return Ok(PathBuf::from(bin));
    }
    let exe = std::env::current_exe().map_err(|e| CliError(format!("locating mcheckd: {e}")))?;
    if exe.file_stem().is_some_and(|s| s == "mcheckd") {
        return Ok(exe);
    }
    let sibling = exe.with_file_name("mcheckd");
    if sibling.exists() {
        return Ok(sibling);
    }
    Err(CliError(format!(
        "mcheckd binary not found next to {} (set MCHECKD_BIN)",
        exe.display()
    )))
}

/// Reconstructs the configuration flags a spawned daemon needs so its
/// driver (suite key, config epoch, cache) matches the client's options —
/// the transport must never change what gets checked.
fn config_args(opts: &Options) -> Vec<std::ffi::OsString> {
    let mut args: Vec<std::ffi::OsString> = Vec::new();
    for checker in &opts.checkers {
        args.push("--checker".into());
        args.push(checker.into());
    }
    if opts.builtin {
        args.push("--builtin".into());
    }
    if let Some(spec) = &opts.spec {
        args.push("--spec".into());
        args.push(spec.into());
    }
    if opts.exhaustive {
        args.push("--mode".into());
        args.push("exhaustive".into());
    }
    if let Some(jobs) = opts.jobs {
        args.push("--jobs".into());
        args.push(jobs.to_string().into());
    }
    args.push(if opts.prune { "--prune" } else { "--no-prune" }.into());
    args.push(
        if opts.interproc {
            "--interproc"
        } else {
            "--no-interproc"
        }
        .into(),
    );
    args.push(
        if opts.refute {
            "--refute"
        } else {
            "--no-refute"
        }
        .into(),
    );
    if let Some(dir) = &opts.cache_dir {
        args.push("--cache-dir".into());
        args.push(dir.into());
    }
    if opts.no_cache {
        args.push("--no-cache".into());
    }
    if let Some(cap) = opts.cache_cap_bytes {
        args.push("--cache-cap-bytes".into());
        args.push(cap.to_string().into());
    }
    args.push("--invalidate".into());
    args.push(
        match opts.invalidate {
            mc_driver::Invalidation::Function => "function",
            mc_driver::Invalidation::Component => "component",
        }
        .into(),
    );
    for file in &opts.files {
        args.push(file.into());
    }
    args
}

/// Builds a `check` request's params: the absolutized files plus the
/// client's `--jobs` as a per-request worker-count hint when set, so a
/// client's parallelism preference survives the hop into a daemon that
/// was started with different (or no) `--jobs`.
fn check_params(opts: &Options, files: Vec<Json>) -> Json {
    let mut fields = vec![("files".to_string(), Json::Array(files))];
    if let Some(jobs) = opts.jobs {
        fields.push(("jobs".to_string(), Json::Int(jobs as i64)));
    }
    Json::Object(fields)
}

/// Absolutizes the client's file paths so the daemon (whose working
/// directory is its own) reads the same files.
fn absolute_files(files: &[PathBuf]) -> Result<Vec<Json>, CliError> {
    files
        .iter()
        .map(|f| {
            let abs =
                std::fs::canonicalize(f).map_err(|e| CliError(format!("{}: {e}", f.display())))?;
            Ok(Json::Str(abs.display().to_string()))
        })
        .collect()
}

/// The `--watch --daemon-socket` loop: a thin client that connects to (or
/// spawns) the daemon and sends one `check` request per settled edit
/// burst, printing each response's envelope. The engine stays hot in the
/// daemon across this process's whole lifetime — and across *other*
/// clients' requests too.
///
/// # Errors
///
/// Returns [`CliError`] when the daemon cannot be reached or spawned;
/// in-flight request failures are printed and watched through, matching
/// the in-process watch loop's resilience.
pub fn run_watch_client(
    opts: &Options,
    socket: &Path,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let mut client = Client::connect_or_spawn(socket, opts)?;
    let interval = std::time::Duration::from_millis(opts.watch_interval_ms.max(1));
    let mut cycles = 0usize;
    let mut snaps: Vec<crate::FileSnap> = opts.files.iter().map(|f| crate::snap_of(f)).collect();
    loop {
        match absolute_files(&opts.files)
            .and_then(|files| client.request("check", check_params(opts, files)))
        {
            Ok(result) => {
                let stats = result.get("stats");
                let count = |k: &str| {
                    stats
                        .and_then(|s| s.get(k))
                        .and_then(Json::as_i64)
                        .unwrap_or(0)
                };
                let _ = writeln!(
                    out,
                    "[watch] daemon checked {} file(s) ({} functions re-checked, {} replayed)",
                    count("units"),
                    count("functions_rechecked"),
                    count("functions_replayed"),
                );
                if let Some(envelope) = result.get("reports") {
                    let _ = writeln!(out, "{}", envelope.to_pretty());
                }
            }
            Err(e) => {
                let _ = writeln!(out, "{e}");
            }
        }
        let _ = out.flush();
        cycles += 1;
        if opts.watch_iterations.is_some_and(|n| cycles >= n) {
            return Ok(());
        }
        crate::wait_for_settled_change(&opts.files, &mut snaps, interval);
    }
}

/// The `mcheckd` binary's entry point. Returns the process exit code.
pub fn cli_main<I: IntoIterator<Item = String>>(args: I) -> u8 {
    match cli_run(args) {
        Ok(code) => code,
        Err(CliError(msg)) => {
            eprintln!("mcheckd: {msg}");
            2
        }
    }
}

fn cli_run<I: IntoIterator<Item = String>>(args: I) -> Result<u8, CliError> {
    let mut rest: Vec<String> = Vec::new();
    let mut socket: Option<PathBuf> = None;
    let mut command: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => {
                let v = it.next().ok_or(CliError("--socket needs a path".into()))?;
                socket = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(CliError(DAEMON_USAGE.into())),
            "serve" | "check" | "invalidate" | "shutdown" if command.is_none() => {
                command = Some(arg);
            }
            _ => rest.push(arg),
        }
    }
    let command = command.ok_or(CliError(DAEMON_USAGE.into()))?;
    let socket = socket.ok_or(CliError(format!("{command} needs --socket <path>")))?;
    match command.as_str() {
        "serve" => {
            let opts = crate::parse_args(rest)?;
            serve(&opts, &socket)?;
            Ok(0)
        }
        "check" => {
            let opts = crate::parse_args(rest)?;
            let mut client = Client::connect_or_spawn(&socket, &opts)?;
            let files = absolute_files(&opts.files)?;
            let result = client.request("check", check_params(&opts, files))?;
            if let Some(envelope) = result.get("reports") {
                println!("{}", envelope.to_pretty());
            }
            Ok(result.get("exit").and_then(Json::as_i64).unwrap_or(0) as u8)
        }
        "invalidate" => {
            let mut client = Client::connect(&socket)
                .map_err(|e| CliError(format!("{}: {e}", socket.display())))?;
            client.request("invalidate", Json::Null)?;
            println!("invalidated");
            Ok(0)
        }
        "shutdown" => match Client::connect(&socket) {
            Ok(mut client) => {
                client.request("shutdown", Json::Null)?;
                println!("daemon stopped");
                Ok(0)
            }
            // No listener: nothing to stop. Reap a stale socket file so
            // the next serve starts clean.
            Err(_) => {
                let _ = std::fs::remove_file(&socket);
                println!("no daemon running");
                Ok(0)
            }
        },
        _ => unreachable!("command is validated above"),
    }
}
