//! Report renderers: text (with source excerpts), JSON, and SARIF 2.1.0.
//!
//! All three renderers consume the same inputs — the final report list,
//! the checked sources (for text excerpts), the count of reports hidden
//! by `// mc-suppress:` comments, and the count demoted by the symbolic
//! refutation pass — so every output format agrees on what was found,
//! what was suppressed, and what was refuted.
//!
//! ## JSON schema (`--format json`)
//!
//! ```json
//! {
//!   "schema": "mcheck-reports",
//!   "version": 1,
//!   "suppressed": 0,
//!   "refuted": 3,
//!   "reports": [
//!     {
//!       "checker": "buffer_mgmt",
//!       "severity": "error",
//!       "file": "sci/sci_main.c",
//!       "function": "PIRemoteGet",
//!       "span": {"line": 41, "col": 5},
//!       "message": "len used after DB_FREE",
//!       "steps": [
//!         {"file": "", "span": {"line": 38, "col": 5}, "note": "branch taken"}
//!       ],
//!       "confidence": 75,
//!       "pruned_paths": 0,
//!       "verdict": "confirmed",
//!       "model": {"gLen": 5},
//!       "fingerprint": "9f86d081884c7d65"
//!     }
//!   ]
//! }
//! ```
//!
//! `schema`/`version` identify the envelope. `suppressed` counts reports
//! dropped by inline suppressions; `refuted` counts reports demoted (and
//! dropped from `reports`) by the `--refute` symbolic witness pass. Each
//! report is the [`Report`] JSON shape plus its stable content
//! `fingerprint` (the baseline key): `verdict` is one of `unchecked` /
//! `sat` / `confirmed` (`refuted` reports are not emitted) and `model` is
//! the concrete global assignment that realizes the witness, present for
//! `sat`/`confirmed` reports. A step with an empty `file` is in the
//! report's own file. All locations carry both `line` and `col` (1-based).
//!
//! ## SARIF (`--format sarif`)
//!
//! A SARIF 2.1.0 log: one run, one `tool.driver` named `mcheck` with one
//! rule per distinct checker, one `result` per report. The witness path is
//! emitted as `codeFlows[0].threadFlows[0].locations`, the fingerprint as
//! `partialFingerprints["mcheckFingerprint/v1"]`, and confidence /
//! function / pruned-path counts / verdict (plus `concreteInput` when a
//! solver model exists) under `properties`. The run-level `properties`
//! carry both `suppressedReports` and `refutedReports`.

use mc_driver::{Report, Severity, Verdict};
use mc_json::Json;
use std::collections::HashMap;
use std::io::Write;

/// Output format selected by `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Human-readable text with source excerpts and numbered path steps.
    #[default]
    Text,
    /// The documented JSON envelope (see module docs).
    Json,
    /// SARIF 2.1.0 with `codeFlows` for the witness path.
    Sarif,
}

impl Format {
    /// Parses a `--format` value.
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            "sarif" => Some(Format::Sarif),
            _ => None,
        }
    }
}

/// Renders `reports` in `format` to `out`. `sources` are `(text, name)`
/// pairs as produced by reading the input files; they feed the text
/// renderer's source excerpts (a report whose file is not among the
/// sources simply renders without an excerpt). `suppressed` is the number
/// of reports already removed by `// mc-suppress:` comments and `refuted`
/// the number demoted by the symbolic refutation pass; every format states
/// both so a clean run is distinguishable from a silenced one.
pub fn render(
    format: Format,
    reports: &[Report],
    sources: &[(String, String)],
    suppressed: usize,
    refuted: usize,
    out: &mut dyn Write,
) {
    match format {
        Format::Text => render_text(reports, sources, suppressed, refuted, out),
        Format::Json => {
            let _ = writeln!(
                out,
                "{}",
                json_envelope(reports, suppressed, refuted).to_pretty()
            );
        }
        Format::Sarif => {
            let _ = writeln!(
                out,
                "{}",
                sarif_log(reports, suppressed, refuted).to_pretty()
            );
        }
    }
}

/// Splits `reports` into the ones to show and the count the symbolic
/// refutation pass demoted to [`Verdict::Refuted`] (their witness path
/// cannot execute). Refuted reports are dropped from every output format;
/// the count is rendered so a quieter run is visibly the refuter's doing.
pub fn partition_refuted(reports: Vec<Report>) -> (Vec<Report>, usize) {
    let total = reports.len();
    let kept: Vec<Report> = reports
        .into_iter()
        .filter(|r| r.verdict != Verdict::Refuted)
        .collect();
    let refuted = total - kept.len();
    (kept, refuted)
}

/// Text renderer: one block per report —
///
/// ```text
/// sci/sci_main.c:41:5: error: [buffer_mgmt] len used after DB_FREE (in PIRemoteGet)
///    41 |     DB_SEND(hdr, len);
///       |     ^
///     1. sci/sci_main.c:38:5: branch taken
///     2. sci/sci_main.c:41:5: statement
/// ```
fn render_text(
    reports: &[Report],
    sources: &[(String, String)],
    suppressed: usize,
    refuted: usize,
    out: &mut dyn Write,
) {
    let by_name: HashMap<&str, &str> = sources
        .iter()
        .map(|(text, name)| (name.as_str(), text.as_str()))
        .collect();
    for r in reports {
        let _ = write!(
            out,
            "{}:{}: {}: [{}] {}",
            r.file, r.span, r.severity, r.checker, r.message
        );
        if !r.function.is_empty() {
            let _ = write!(out, " (in {})", r.function);
        }
        let _ = writeln!(out);
        if let Some(text) = by_name.get(r.file.as_str()) {
            write_excerpt(text, r.span.line, r.span.col, out);
        }
        for (i, step) in r.steps.iter().enumerate() {
            let file = if step.file.is_empty() {
                &r.file
            } else {
                &step.file
            };
            let _ = writeln!(out, "    {}. {}:{}: {}", i + 1, file, step.span, step.note);
        }
        if r.verdict != Verdict::Unchecked {
            let _ = write!(out, "    verdict: {}", r.verdict.as_str());
            if !r.model.is_empty() {
                let binds: Vec<String> = r
                    .model
                    .iter()
                    .map(|(name, v)| format!("{name}={v}"))
                    .collect();
                let _ = write!(out, " (input: {})", binds.join(", "));
            }
            let _ = writeln!(out);
        }
    }
    if suppressed > 0 {
        let _ = writeln!(
            out,
            "note: {suppressed} report(s) suppressed by // mc-suppress comments"
        );
    }
    if refuted > 0 {
        let _ = writeln!(
            out,
            "note: {refuted} report(s) refuted by symbolic witness analysis"
        );
    }
}

/// Writes the `   41 | <source>` / `      |  ^` excerpt pair for one
/// location. Out-of-range lines (a report against generated or shifted
/// code) write nothing.
fn write_excerpt(text: &str, line: u32, col: u32, out: &mut dyn Write) {
    let Some(src_line) = text.lines().nth(line.saturating_sub(1) as usize) else {
        return;
    };
    let src_line = src_line.trim_end();
    let _ = writeln!(out, "{line:>5} | {src_line}");
    // The caret lands under the report column, clamped into the line so a
    // stale column can never push it off the excerpt.
    let caret_at = (col.max(1) as usize - 1).min(src_line.chars().count());
    let pad: String = src_line
        .chars()
        .take(caret_at)
        .map(|c| if c == '\t' { '\t' } else { ' ' })
        .collect();
    let _ = writeln!(out, "      | {pad}^");
}

/// Builds the documented `mcheck-reports` JSON envelope (the module docs'
/// schema): the same value `--format json` pretty-prints, also reused
/// verbatim by the `mcheckd` daemon for check responses and push-style
/// diagnostics.
pub fn json_envelope(reports: &[Report], suppressed: usize, refuted: usize) -> Json {
    let reports_json: Vec<Json> = reports
        .iter()
        .map(|r| {
            let mut fields = match mc_json::ToJson::to_json(r) {
                Json::Object(fields) => fields,
                other => return other,
            };
            fields.push(("fingerprint".to_string(), Json::Str(r.fingerprint())));
            Json::Object(fields)
        })
        .collect();
    mc_json::object(vec![
        ("schema", Json::Str("mcheck-reports".into())),
        ("version", Json::Int(1)),
        ("suppressed", Json::Int(suppressed as i64)),
        ("refuted", Json::Int(refuted as i64)),
        ("reports", Json::Array(reports_json)),
    ])
}

/// Builds the SARIF 2.1.0 log value.
fn sarif_log(reports: &[Report], suppressed: usize, refuted: usize) -> Json {
    // One rule per distinct checker, in order of first appearance.
    let mut rule_index: Vec<&str> = Vec::new();
    for r in reports {
        if !rule_index.contains(&r.checker.as_str()) {
            rule_index.push(&r.checker);
        }
    }
    let rules: Vec<Json> = rule_index
        .iter()
        .map(|id| {
            mc_json::object(vec![
                ("id", Json::Str((*id).to_string())),
                (
                    "shortDescription",
                    mc_json::object(vec![("text", Json::Str(format!("mcheck `{id}` checker")))]),
                ),
            ])
        })
        .collect();

    let results: Vec<Json> = reports
        .iter()
        .map(|r| {
            let level = match r.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            let mut fields = vec![
                ("ruleId", Json::Str(r.checker.clone())),
                (
                    "ruleIndex",
                    Json::Int(
                        rule_index
                            .iter()
                            .position(|id| *id == r.checker)
                            .unwrap_or(0) as i64,
                    ),
                ),
                ("level", Json::Str(level.into())),
                (
                    "message",
                    mc_json::object(vec![("text", Json::Str(r.message.clone()))]),
                ),
                (
                    "locations",
                    Json::Array(vec![sarif_location(&r.file, r.span, None)]),
                ),
                (
                    "partialFingerprints",
                    mc_json::object(vec![("mcheckFingerprint/v1", Json::Str(r.fingerprint()))]),
                ),
                ("properties", {
                    let mut props = vec![
                        ("function", Json::Str(r.function.clone())),
                        ("confidence", Json::Int(i64::from(r.confidence))),
                        ("prunedPaths", Json::Int(i64::from(r.pruned_paths))),
                        ("verdict", Json::Str(r.verdict.as_str().into())),
                    ];
                    if !r.model.is_empty() {
                        props.push((
                            "concreteInput",
                            Json::Object(
                                r.model
                                    .iter()
                                    .map(|(name, v)| (name.clone(), Json::Int(*v)))
                                    .collect(),
                            ),
                        ));
                    }
                    mc_json::object(props)
                }),
            ];
            if !r.steps.is_empty() {
                let flow_locations: Vec<Json> = r
                    .steps
                    .iter()
                    .map(|s| {
                        let file = if s.file.is_empty() { &r.file } else { &s.file };
                        mc_json::object(vec![(
                            "location",
                            sarif_location(file, s.span, Some(&s.note)),
                        )])
                    })
                    .collect();
                fields.push((
                    "codeFlows",
                    Json::Array(vec![mc_json::object(vec![(
                        "threadFlows",
                        Json::Array(vec![mc_json::object(vec![(
                            "locations",
                            Json::Array(flow_locations),
                        )])]),
                    )])]),
                ));
            }
            mc_json::object(fields)
        })
        .collect();

    mc_json::object(vec![
        (
            "$schema",
            Json::Str("https://json.schemastore.org/sarif-2.1.0.json".into()),
        ),
        ("version", Json::Str("2.1.0".into())),
        (
            "runs",
            Json::Array(vec![mc_json::object(vec![
                (
                    "tool",
                    mc_json::object(vec![(
                        "driver",
                        mc_json::object(vec![
                            ("name", Json::Str("mcheck".into())),
                            ("version", Json::Str(env!("CARGO_PKG_VERSION").into())),
                            ("rules", Json::Array(rules)),
                        ]),
                    )]),
                ),
                ("results", Json::Array(results)),
                (
                    "properties",
                    mc_json::object(vec![
                        ("suppressedReports", Json::Int(suppressed as i64)),
                        ("refutedReports", Json::Int(refuted as i64)),
                    ]),
                ),
            ])]),
        ),
    ])
}

/// One SARIF `location` (physical location + optional message).
fn sarif_location(file: &str, span: mc_ast::Span, message: Option<&str>) -> Json {
    let mut fields = vec![(
        "physicalLocation",
        mc_json::object(vec![
            (
                "artifactLocation",
                mc_json::object(vec![("uri", Json::Str(file.to_string()))]),
            ),
            (
                "region",
                mc_json::object(vec![
                    ("startLine", Json::Int(i64::from(span.line))),
                    ("startColumn", Json::Int(i64::from(span.col))),
                ]),
            ),
        ]),
    )];
    if let Some(text) = message {
        fields.push((
            "message",
            mc_json::object(vec![("text", Json::Str(text.to_string()))]),
        ));
    }
    mc_json::object(fields)
}

/// Splits `reports` into kept reports and the count suppressed by inline
/// `// mc-suppress: <checker>` comments.
///
/// A suppression names one or more checkers (comma- or space-separated)
/// and silences matching reports on its own line or the line directly
/// below (so it works both as a trailing comment and as a comment above
/// the flagged statement):
///
/// ```c
/// DB_FREE();  // mc-suppress: buffer_mgmt
/// // mc-suppress: lanes, send_wait
/// CONTROL_SEND(hdr);
/// ```
///
/// Checker names must match exactly — there is deliberately no wildcard,
/// so a suppression can never hide a report from a checker added later.
pub fn partition_suppressed(
    reports: Vec<Report>,
    sources: &[(String, String)],
) -> (Vec<Report>, usize) {
    // file -> list of (comment line, suppressed checker names)
    let mut map: HashMap<&str, Vec<(u32, Vec<&str>)>> = HashMap::new();
    for (text, name) in sources {
        for (idx, line) in text.lines().enumerate() {
            let Some(at) = line.find("// mc-suppress:") else {
                continue;
            };
            let names: Vec<&str> = line[at + "// mc-suppress:".len()..]
                .split([',', ' ', '\t'])
                .filter(|s| !s.is_empty())
                .collect();
            if !names.is_empty() {
                map.entry(name.as_str())
                    .or_default()
                    .push((idx as u32 + 1, names));
            }
        }
    }
    let total = reports.len();
    let kept: Vec<Report> = reports
        .into_iter()
        .filter(|r| {
            let Some(entries) = map.get(r.file.as_str()) else {
                return true;
            };
            !entries.iter().any(|(line, names)| {
                (*line == r.span.line || *line + 1 == r.span.line)
                    && names.iter().any(|n| *n == r.checker)
            })
        })
        .collect();
    let suppressed = total - kept.len();
    (kept, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_ast::Span;

    fn sample_report() -> Report {
        let mut r = Report::error(
            "buffer_mgmt",
            "f.c",
            "PIHandler",
            Span::new(2, 3),
            "double free",
        );
        r.steps = vec![
            mc_cfg::PathStep::new(Span::new(1, 1), "statement"),
            mc_cfg::PathStep::new(Span::new(2, 3), "branch taken"),
        ];
        r
    }

    fn sample_source() -> Vec<(String, String)> {
        vec![(
            "void PIHandler(void) {\n  DB_FREE();\n}\n".to_string(),
            "f.c".to_string(),
        )]
    }

    #[test]
    fn format_parse() {
        assert_eq!(Format::parse("text"), Some(Format::Text));
        assert_eq!(Format::parse("json"), Some(Format::Json));
        assert_eq!(Format::parse("sarif"), Some(Format::Sarif));
        assert_eq!(Format::parse("xml"), None);
    }

    #[test]
    fn text_renders_excerpt_caret_and_steps() {
        let mut out = Vec::new();
        render_text(&[sample_report()], &sample_source(), 0, 0, &mut out);
        let s = String::from_utf8(out).unwrap();
        assert!(
            s.contains("f.c:2:3: error: [buffer_mgmt] double free (in PIHandler)"),
            "{s}"
        );
        assert!(s.contains("    2 |   DB_FREE();"), "{s}");
        assert!(s.contains("      |   ^"), "{s}");
        assert!(s.contains("    1. f.c:1:1: statement"), "{s}");
        assert!(s.contains("    2. f.c:2:3: branch taken"), "{s}");
    }

    #[test]
    fn text_counts_suppressed_and_refuted() {
        let mut out = Vec::new();
        render_text(&[], &[], 2, 3, &mut out);
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("2 report(s) suppressed"), "{s}");
        assert!(
            s.contains("3 report(s) refuted by symbolic witness analysis"),
            "{s}"
        );
    }

    #[test]
    fn text_renders_verdict_with_concrete_input() {
        let mut confirmed = sample_report();
        confirmed.verdict = Verdict::Confirmed;
        confirmed.model = vec![("gLen".to_string(), 5), ("gNak".to_string(), -1)];
        let mut out = Vec::new();
        render_text(&[confirmed], &sample_source(), 0, 0, &mut out);
        let s = String::from_utf8(out).unwrap();
        assert!(
            s.contains("verdict: confirmed (input: gLen=5, gNak=-1)"),
            "{s}"
        );
        // An unchecked report prints no verdict line at all.
        let mut out = Vec::new();
        render_text(&[sample_report()], &sample_source(), 0, 0, &mut out);
        let s = String::from_utf8(out).unwrap();
        assert!(!s.contains("verdict:"), "{s}");
    }

    #[test]
    fn partition_refuted_drops_only_refuted_reports() {
        let mut refuted = sample_report();
        refuted.verdict = Verdict::Refuted;
        let mut sat = sample_report();
        sat.verdict = Verdict::Sat;
        let (kept, n) = partition_refuted(vec![sample_report(), refuted, sat]);
        assert_eq!(n, 1);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().all(|r| r.verdict != Verdict::Refuted));
    }

    #[test]
    fn json_envelope_carries_schema_and_fingerprints() {
        let r = sample_report();
        let v = json_envelope(std::slice::from_ref(&r), 1, 4);
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("mcheck-reports")
        );
        assert_eq!(v.get("version").and_then(Json::as_i64), Some(1));
        assert_eq!(v.get("suppressed").and_then(Json::as_i64), Some(1));
        assert_eq!(v.get("refuted").and_then(Json::as_i64), Some(4));
        let reports = v.get("reports").and_then(Json::as_array).unwrap();
        assert_eq!(
            reports[0].get("fingerprint").and_then(Json::as_str),
            Some(r.fingerprint().as_str())
        );
        // Locations keep both line and col.
        let span = reports[0].get("span").unwrap();
        assert_eq!(span.get("line").and_then(Json::as_i64), Some(2));
        assert_eq!(span.get("col").and_then(Json::as_i64), Some(3));
    }

    #[test]
    fn sarif_has_required_shape() {
        let v = sarif_log(&[sample_report()], 0, 0);
        assert_eq!(v.get("version").and_then(Json::as_str), Some("2.1.0"));
        let runs = v.get("runs").and_then(Json::as_array).unwrap();
        let driver = runs[0].get("tool").unwrap().get("driver").unwrap();
        assert_eq!(driver.get("name").and_then(Json::as_str), Some("mcheck"));
        let results = runs[0].get("results").and_then(Json::as_array).unwrap();
        let result = &results[0];
        assert_eq!(
            result.get("ruleId").and_then(Json::as_str),
            Some("buffer_mgmt")
        );
        let flows = result.get("codeFlows").and_then(Json::as_array).unwrap();
        let locations = flows[0]
            .get("threadFlows")
            .and_then(Json::as_array)
            .unwrap()[0]
            .get("locations")
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(locations.len(), 2);
        let region = locations[1]
            .get("location")
            .unwrap()
            .get("physicalLocation")
            .unwrap()
            .get("region")
            .unwrap();
        assert_eq!(region.get("startLine").and_then(Json::as_i64), Some(2));
        assert_eq!(region.get("startColumn").and_then(Json::as_i64), Some(3));
        let props = result.get("properties").unwrap();
        assert_eq!(
            props.get("verdict").and_then(Json::as_str),
            Some("unchecked")
        );
        assert!(props.get("concreteInput").is_none());
        let run_props = runs[0].get("properties").unwrap();
        assert_eq!(
            run_props.get("refutedReports").and_then(Json::as_i64),
            Some(0)
        );
    }

    #[test]
    fn sarif_confirmed_report_carries_concrete_input() {
        let mut r = sample_report();
        r.verdict = Verdict::Confirmed;
        r.model = vec![("gLen".to_string(), 7)];
        let v = sarif_log(&[r], 0, 2);
        let runs = v.get("runs").and_then(Json::as_array).unwrap();
        let results = runs[0].get("results").and_then(Json::as_array).unwrap();
        let props = results[0].get("properties").unwrap();
        assert_eq!(
            props.get("verdict").and_then(Json::as_str),
            Some("confirmed")
        );
        let input = props.get("concreteInput").unwrap();
        assert_eq!(input.get("gLen").and_then(Json::as_i64), Some(7));
        let run_props = runs[0].get("properties").unwrap();
        assert_eq!(
            run_props.get("refutedReports").and_then(Json::as_i64),
            Some(2)
        );
    }

    // Regression (metal load-time warnings): suppressions must also match
    // when the report's file is a checker (.metal) file whose text the CLI
    // folds into the suppression sources — not one of the checked C files.
    #[test]
    fn suppression_matches_metal_checker_file_reports() {
        let sources = vec![(
            "state gLen { valid }\n// mc-suppress: metal-load\nevent bogus;\n".to_string(),
            "checkers/buf.metal".to_string(),
        )];
        let reports = vec![Report::warning(
            "metal-load",
            "checkers/buf.metal",
            "buffer_mgmt",
            Span::new(3, 1),
            "[W01] unreachable state",
        )];
        let (kept, suppressed) = partition_suppressed(reports, &sources);
        assert_eq!((kept.len(), suppressed), (0, 1));
    }

    #[test]
    fn suppression_matches_same_line_and_line_above() {
        let src = "\
// mc-suppress: buffer_mgmt
DB_FREE();
CONTROL_SEND(); // mc-suppress: send_wait, lanes
"
        .to_string();
        let sources = vec![(src, "f.c".to_string())];
        let mk =
            |checker: &str, line: u32| Report::error(checker, "f.c", "h", Span::new(line, 1), "m");
        let reports = vec![
            mk("buffer_mgmt", 2), // line below the comment: suppressed
            mk("send_wait", 3),   // trailing comment: suppressed
            mk("lanes", 3),       // second name in the list: suppressed
            mk("buffer_mgmt", 3), // not named on line 3: kept
            mk("send_wait", 2),   // wrong checker for line 1 comment: kept
        ];
        let (kept, suppressed) = partition_suppressed(reports, &sources);
        assert_eq!(suppressed, 3);
        assert_eq!(kept.len(), 2);
        assert!(kept
            .iter()
            .all(|r| r.span.line != 2 || r.checker != "buffer_mgmt"));
    }

    #[test]
    fn suppression_ignores_other_files() {
        let sources = vec![(
            "// mc-suppress: lanes\nx();\n".to_string(),
            "a.c".to_string(),
        )];
        let reports = vec![Report::error("lanes", "b.c", "h", Span::new(2, 1), "m")];
        let (kept, suppressed) = partition_suppressed(reports, &sources);
        assert_eq!((kept.len(), suppressed), (1, 0));
    }
}
