//! `mcheckd`: the persistent mcheck daemon and its client subcommands.
//!
//! See `mc_cli::daemon` for the JSON-RPC protocol. Unix only — the
//! transport is a unix domain socket.

#[cfg(unix)]
fn main() {
    let code = mc_cli::daemon::cli_main(std::env::args().skip(1));
    std::process::exit(i32::from(code));
}

#[cfg(not(unix))]
fn main() {
    eprintln!("mcheckd: unix domain sockets are required; this platform has none");
    std::process::exit(2);
}
