//! `mcheck` — check FLASH-style protocol C with metal and built-in
//! checkers from the command line. See [`mc_cli::USAGE`].
//!
//! Exit codes (documented in the README and pinned by tests):
//! `0` ran clean with no reports, `1` ran and emitted reports,
//! `2` usage, I/O, or parse error.

use mc_driver::Severity;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = match mc_cli::parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if opts.watch {
        return match mc_cli::run_watch(&opts, &mut std::io::stdout()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::from(2)
            }
        };
    }
    match mc_cli::run(&opts) {
        Ok(reports) => {
            mc_cli::write_reports(&reports, opts.json, &mut std::io::stdout());
            if opts.emit_corpus.is_some() {
                println!("corpus written");
                return ExitCode::SUCCESS;
            }
            if !reports.is_empty() {
                let errors = reports
                    .iter()
                    .filter(|r| r.severity == Severity::Error)
                    .count();
                eprintln!("\n{errors} error(s), {} report(s)", reports.len());
            }
            ExitCode::from(mc_cli::exit_code(&reports))
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
