//! `mcheck` — check FLASH-style protocol C with metal and built-in
//! checkers from the command line. See [`mc_cli::USAGE`].

use mc_driver::Severity;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = match mc_cli::parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match mc_cli::run(&opts) {
        Ok(reports) => {
            let errors = reports
                .iter()
                .filter(|r| r.severity == Severity::Error)
                .count();
            if opts.json {
                println!("{}", mc_json::to_string_pretty(&reports));
            } else {
                for r in &reports {
                    println!("{r}");
                }
            }
            if opts.emit_corpus.is_some() {
                println!("corpus written");
                ExitCode::SUCCESS
            } else if errors > 0 {
                eprintln!("\n{errors} error(s), {} report(s)", reports.len());
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
