//! `mcheck` — check FLASH-style protocol C with metal and built-in
//! checkers from the command line. See [`mc_cli::USAGE`].
//!
//! Exit codes (documented in the README and pinned by tests):
//! `0` ran clean with no (new) reports, `1` ran and emitted reports,
//! `2` usage, I/O, or parse error. With `--baseline`, reports whose
//! fingerprint the baseline remembers do not count toward the exit code.

use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = match mc_cli::parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if opts.watch {
        return match mc_cli::run_watch(&opts, &mut std::io::stdout()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::from(2)
            }
        };
    }
    match mc_cli::run_full(&opts, &mut std::io::stdout(), &mut std::io::stderr()) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
