//! Golden-file tests for the three renderers over a pinned corpus slice.
//!
//! The slice is the `bitvector` protocol at the stock seed, checked with
//! the full built-in suite at the driver defaults (pruning on, interproc
//! off) — deterministic by construction, so the rendered text/JSON/SARIF
//! bytes are pinned under `tests/golden/`. Run with
//! `MC_UPDATE_GOLDEN=1` to regenerate after an intentional output change.

use mc_driver::{Driver, Report};
use mc_json::Json;
use std::path::PathBuf;

/// Checks the pinned slice and returns (reports, sources).
fn corpus_slice() -> (Vec<Report>, Vec<(String, String)>) {
    let protocol = mc_corpus::generate_all(mc_corpus::DEFAULT_SEED)
        .into_iter()
        .find(|p| p.name == "bitvector")
        .expect("bitvector protocol exists");
    let sources: Vec<(String, String)> = protocol
        .files
        .iter()
        .map(|f| (f.source.clone(), format!("bitvector/{}", f.name)))
        .collect();
    let mut driver = Driver::new();
    driver.jobs(1);
    mc_checkers::all_checkers(&mut driver, &protocol.spec).expect("suite registers");
    let mut reports = driver.check_sources(&sources).expect("slice checks");
    Report::sort_by_confidence(&mut reports);
    (reports, sources)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("MC_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e} (run with MC_UPDATE_GOLDEN=1)", path.display()));
    assert_eq!(
        rendered, expected,
        "{name} drifted from its golden file; if intentional, regenerate with MC_UPDATE_GOLDEN=1"
    );
}

fn rendered(format: mc_cli::Format) -> String {
    let (reports, sources) = corpus_slice();
    assert!(!reports.is_empty(), "the slice must produce reports");
    let mut out = Vec::new();
    mc_cli::render(format, &reports, &sources, 0, 0, &mut out);
    String::from_utf8(out).unwrap()
}

#[test]
fn text_renderer_matches_golden() {
    check_golden("corpus_slice.txt", &rendered(mc_cli::Format::Text));
}

#[test]
fn json_renderer_matches_golden() {
    check_golden("corpus_slice.json", &rendered(mc_cli::Format::Json));
}

#[test]
fn sarif_renderer_matches_golden() {
    check_golden("corpus_slice.sarif", &rendered(mc_cli::Format::Sarif));
}

/// SARIF 2.1.0 structural validity over the real corpus slice: required
/// top-level keys, the run/tool/driver/rules shape, and for every result
/// with a codeFlow the codeFlows -> threadFlows -> locations nesting with
/// line+column regions.
#[test]
fn sarif_output_is_structurally_valid() {
    let log = Json::parse(&rendered(mc_cli::Format::Sarif)).expect("SARIF parses as JSON");

    assert_eq!(log.get("version").and_then(Json::as_str), Some("2.1.0"));
    assert!(log.get("$schema").and_then(Json::as_str).is_some());
    let runs = log
        .get("runs")
        .and_then(Json::as_array)
        .expect("runs array");
    assert_eq!(runs.len(), 1);

    let driver = runs[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("tool.driver");
    assert_eq!(driver.get("name").and_then(Json::as_str), Some("mcheck"));
    let rules = driver.get("rules").and_then(Json::as_array).expect("rules");
    assert!(!rules.is_empty());
    for rule in rules {
        assert!(rule.get("id").and_then(Json::as_str).is_some());
    }

    let results = runs[0]
        .get("results")
        .and_then(Json::as_array)
        .expect("results");
    assert!(!results.is_empty());
    let mut with_flows = 0usize;
    for result in results {
        let rule_id = result.get("ruleId").and_then(Json::as_str).expect("ruleId");
        let idx = result
            .get("ruleIndex")
            .and_then(Json::as_i64)
            .expect("ruleIndex") as usize;
        assert_eq!(rules[idx].get("id").and_then(Json::as_str), Some(rule_id));
        let level = result.get("level").and_then(Json::as_str).expect("level");
        assert!(level == "error" || level == "warning");
        assert!(result
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(Json::as_str)
            .is_some());
        let locations = result
            .get("locations")
            .and_then(Json::as_array)
            .expect("locations");
        assert_region(&locations[0]);
        assert!(result
            .get("partialFingerprints")
            .and_then(|f| f.get("mcheckFingerprint/v1"))
            .and_then(Json::as_str)
            .is_some_and(|fp| fp.len() == 16));

        if let Some(flows) = result.get("codeFlows").and_then(Json::as_array) {
            with_flows += 1;
            let thread_flows = flows[0]
                .get("threadFlows")
                .and_then(Json::as_array)
                .expect("threadFlows");
            let steps = thread_flows[0]
                .get("locations")
                .and_then(Json::as_array)
                .expect("threadFlow locations");
            assert!(!steps.is_empty());
            for step in steps {
                assert_region(step.get("location").expect("location wrapper"));
            }
        }
    }
    assert!(with_flows > 0, "some result must carry a witness codeFlow");
}

/// Every path-traversal (metal + path-machine) report on the slice carries
/// a non-empty witness path.
#[test]
fn path_checker_reports_carry_witness_steps() {
    let (reports, _) = corpus_slice();
    // Structural checkers report at function granularity without walking
    // paths; everything else must explain itself with a witness.
    let structural = ["exec_restrict", "interrupt"];
    for r in &reports {
        if structural.contains(&r.checker.as_str()) {
            continue;
        }
        assert!(
            !r.steps.is_empty(),
            "[{}] {}:{} `{}` has no witness path",
            r.checker,
            r.file,
            r.span,
            r.message
        );
    }
}

fn assert_region(location: &Json) {
    let region = location
        .get("physicalLocation")
        .and_then(|p| p.get("region"))
        .expect("physicalLocation.region");
    assert!(region
        .get("startLine")
        .and_then(Json::as_i64)
        .is_some_and(|l| l >= 1));
    assert!(region
        .get("startColumn")
        .and_then(Json::as_i64)
        .is_some_and(|c| c >= 1));
    assert!(location
        .get("physicalLocation")
        .and_then(|p| p.get("artifactLocation"))
        .and_then(|a| a.get("uri"))
        .and_then(Json::as_str)
        .is_some());
}
