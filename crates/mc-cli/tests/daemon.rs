//! End-to-end tests for the `mcheckd` daemon: real binaries, a real unix
//! socket, and the contract that every transport — daemon `check`,
//! `--watch --daemon-socket`, and batch `mcheck` — reports the same
//! thing byte for byte.
#![cfg(unix)]

use mc_json::Json;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

const MCHECKD: &str = env!("CARGO_BIN_EXE_mcheckd");
const MCHECK: &str = env!("CARGO_BIN_EXE_mcheck");

/// A fresh scratch directory plus a socket path short enough for
/// `sockaddr_un` (the temp dir keeps paths well under the limit).
fn scratch(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("mcheckd_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("d.sock");
    (dir, socket)
}

/// The planted-bug source every test checks: one raw read, one double
/// free.
fn write_buggy_source(dir: &std::path::Path) -> PathBuf {
    let src = dir.join("h.c");
    std::fs::write(
        &src,
        "void h(void) { MISCBUS_READ_DB(a, b); DB_FREE(); DB_FREE(); }\n",
    )
    .unwrap();
    src.canonicalize().unwrap()
}

fn connect_with_retry(socket: &std::path::Path) -> UnixStream {
    for _ in 0..100 {
        if let Ok(s) = UnixStream::connect(socket) {
            return s;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("daemon never came up on {}", socket.display());
}

fn shutdown(socket: &std::path::Path) {
    let _ = Command::new(MCHECKD)
        .args(["shutdown", "--socket"])
        .arg(socket)
        .output();
}

/// `mcheckd check` with no daemon running: the client spawns one
/// (fall-back path), and the envelope it prints is byte-identical to
/// batch `mcheck --format json` over the same file.
#[test]
fn daemon_check_spawns_and_matches_batch_output() {
    let (dir, socket) = scratch("spawn");
    let src = write_buggy_source(&dir);

    let daemon_out = Command::new(MCHECKD)
        .args(["check", "--socket"])
        .arg(&socket)
        .arg("--builtin")
        .arg(&src)
        .output()
        .unwrap();
    shutdown(&socket);
    assert_eq!(
        daemon_out.status.code(),
        Some(1),
        "reports were emitted: {}",
        String::from_utf8_lossy(&daemon_out.stderr)
    );

    let batch_out = Command::new(MCHECK)
        .args(["--builtin", "--format", "json"])
        .arg(&src)
        .output()
        .unwrap();
    assert_eq!(batch_out.status.code(), Some(1));

    let daemon_env = Json::parse(std::str::from_utf8(&daemon_out.stdout).unwrap()).unwrap();
    let batch_env = Json::parse(std::str::from_utf8(&batch_out.stdout).unwrap()).unwrap();
    assert_eq!(
        daemon_env.get("schema").and_then(Json::as_str),
        Some("mcheck-reports")
    );
    assert_eq!(
        daemon_env, batch_env,
        "daemon transport changed the reports"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A second `serve` on a live socket is refused; a stale socket file
/// (its daemon long dead) is reaped and rebound.
#[test]
fn serve_refuses_live_socket_and_reaps_stale_one() {
    let (dir, socket) = scratch("stale");
    let src = write_buggy_source(&dir);

    // Plant a stale socket file: bind and immediately drop the listener.
    // The file stays behind, but nothing accepts on it.
    drop(UnixListener::bind(&socket).unwrap());
    assert!(socket.exists(), "stale socket file planted");

    let mut daemon = Command::new(MCHECKD)
        .args(["serve", "--socket"])
        .arg(&socket)
        .arg("--builtin")
        .arg(&src)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    drop(connect_with_retry(&socket)); // reaped + rebound

    let second = Command::new(MCHECKD)
        .args(["serve", "--socket"])
        .arg(&socket)
        .arg("--builtin")
        .arg(&src)
        .output()
        .unwrap();
    assert_eq!(second.status.code(), Some(2), "double-bind must be refused");
    assert!(
        String::from_utf8_lossy(&second.stderr).contains("already listening"),
        "{}",
        String::from_utf8_lossy(&second.stderr)
    );

    shutdown(&socket);
    let _ = daemon.wait();
    assert!(!socket.exists(), "shutdown removes the socket file");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `subscribe` connections receive a push `diagnostics` notification —
/// the same mcheck-reports envelope — whenever any other client checks.
#[test]
fn subscribers_get_push_diagnostics() {
    let (dir, socket) = scratch("subscribe");
    let src = write_buggy_source(&dir);

    let mut daemon = Command::new(MCHECKD)
        .args(["serve", "--socket"])
        .arg(&socket)
        .arg("--builtin")
        .arg(&src)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut sub = connect_with_retry(&socket);
    writeln!(sub, r#"{{"id": 7, "method": "subscribe"}}"#).unwrap();
    let mut reader = BufReader::new(sub.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let resp = Json::parse(line.trim()).unwrap();
    assert_eq!(resp.get("id").and_then(Json::as_i64), Some(7));
    assert_eq!(
        resp.get("result")
            .and_then(|r| r.get("ok"))
            .and_then(Json::as_bool),
        Some(true)
    );

    // Another client triggers a check; the subscriber gets the push.
    let check = Command::new(MCHECKD)
        .args(["check", "--socket"])
        .arg(&socket)
        .arg("--builtin")
        .arg(&src)
        .output()
        .unwrap();
    assert_eq!(check.status.code(), Some(1));
    let mut push = String::new();
    reader.read_line(&mut push).unwrap();
    let note = Json::parse(push.trim()).unwrap();
    assert_eq!(
        note.get("method").and_then(Json::as_str),
        Some("diagnostics")
    );
    let envelope = note.get("params").unwrap();
    assert_eq!(
        envelope.get("schema").and_then(Json::as_str),
        Some("mcheck-reports")
    );
    assert!(
        !envelope
            .get("reports")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty(),
        "the planted bugs ride the push"
    );

    shutdown(&socket);
    let _ = daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `invalidate` drops the memo tables (observable only as a still-correct
/// next check), and `shutdown` against a dead socket exits 0.
#[test]
fn invalidate_then_recheck_and_idempotent_shutdown() {
    let (dir, socket) = scratch("invalidate");
    let src = write_buggy_source(&dir);

    let first = Command::new(MCHECKD)
        .args(["check", "--socket"])
        .arg(&socket)
        .arg("--builtin")
        .arg(&src)
        .output()
        .unwrap();
    assert_eq!(first.status.code(), Some(1));

    let inv = Command::new(MCHECKD)
        .args(["invalidate", "--socket"])
        .arg(&socket)
        .output()
        .unwrap();
    assert_eq!(inv.status.code(), Some(0), "{:?}", inv);

    let second = Command::new(MCHECKD)
        .args(["check", "--socket"])
        .arg(&socket)
        .arg("--builtin")
        .arg(&src)
        .output()
        .unwrap();
    assert_eq!(second.status.code(), Some(1));
    assert_eq!(
        Json::parse(std::str::from_utf8(&first.stdout).unwrap()).unwrap(),
        Json::parse(std::str::from_utf8(&second.stdout).unwrap()).unwrap(),
        "invalidation must not change the reports"
    );

    shutdown(&socket);
    // Second shutdown: nothing is listening; still exit 0.
    let again = Command::new(MCHECKD)
        .args(["shutdown", "--socket"])
        .arg(&socket)
        .output()
        .unwrap();
    assert_eq!(again.status.code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A `check` request may carry a per-request `jobs` hint: the daemon
/// applies it for that run, echoes the effective count in the stats, and
/// the reports stay byte-identical at every worker count — the hint
/// trades latency, never output.
#[test]
fn check_jobs_hint_is_applied_and_echoed() {
    let (dir, socket) = scratch("jobs");
    let src = write_buggy_source(&dir);

    let mut daemon = Command::new(MCHECKD)
        .args(["serve", "--socket"])
        .arg(&socket)
        .arg("--builtin")
        .arg(&src)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let conn = connect_with_retry(&socket);
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut conn = conn;
    let mut ask = |id: i64, params: &str| -> Json {
        writeln!(
            conn,
            r#"{{"id": {id}, "method": "check", "params": {params}}}"#
        )
        .unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = Json::parse(line.trim()).unwrap();
        assert_eq!(resp.get("id").and_then(Json::as_i64), Some(id));
        resp
    };

    let file = format!(r#"["{}"]"#, src.display());
    let with_hint = ask(1, &format!(r#"{{"files": {file}, "jobs": 2}}"#));
    let result = with_hint.get("result").expect("check succeeds");
    assert_eq!(
        result
            .get("stats")
            .and_then(|s| s.get("jobs"))
            .and_then(Json::as_i64),
        Some(2),
        "the hint is echoed back: {with_hint:?}"
    );

    let without = ask(2, &format!(r#"{{"files": {file}}}"#));
    let default_jobs = without
        .get("result")
        .and_then(|r| r.get("stats"))
        .and_then(|s| s.get("jobs"))
        .and_then(Json::as_i64)
        .unwrap();
    assert!(default_jobs >= 1, "hint-less requests use the default");
    assert_eq!(
        with_hint.get("result").and_then(|r| r.get("reports")),
        without.get("result").and_then(|r| r.get("reports")),
        "the worker count must never change report bytes"
    );

    let bad = ask(3, &format!(r#"{{"files": {file}, "jobs": 0}}"#));
    assert!(
        bad.get("error")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("jobs")),
        "a zero hint is a request error: {bad:?}"
    );

    shutdown(&socket);
    let _ = daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `mcheck --watch --daemon-socket` is a thin client: it spawns the
/// daemon (via `MCHECKD_BIN`), sends a check request, and prints the
/// daemon's envelope.
#[test]
fn watch_through_daemon_socket_prints_daemon_reports() {
    let (dir, socket) = scratch("watch");
    let src = write_buggy_source(&dir);

    let out = Command::new(MCHECK)
        .env("MCHECKD_BIN", MCHECKD)
        .args(["--builtin", "--watch", "--watch-iterations", "1"])
        .arg("--daemon-socket")
        .arg(&socket)
        .arg(&src)
        .output()
        .unwrap();
    shutdown(&socket);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("[watch] daemon checked 1 file(s)"),
        "{text}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(text.contains("mcheck-reports"), "{text}");
    assert!(text.contains("wait_for_db"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}
