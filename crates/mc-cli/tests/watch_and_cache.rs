//! End-to-end CLI behaviour that unit tests cannot cover: a real
//! `mcheck --watch` session driven through file edits, the documented
//! process exit codes of the installed binary, byte-identical reports from
//! a size-capped cache, and `--interproc` resolving a helper that a
//! per-function run flags.

use mc_cli::{parse_args, run, run_full, run_watch, Options};
use std::path::PathBuf;
use std::process::Command;

fn args(s: &[&str]) -> Options {
    parse_args(s.iter().map(|s| s.to_string())).unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcheck_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A watch session across a real edit: the first cycle reports the bug,
/// a timestamp-only rewrite of the *other* file does not trigger a cycle
/// or a re-check, and the cycle triggered by the fix re-checks only the
/// edited file and comes back clean.
#[test]
fn watch_session_recheck_on_edit_but_not_on_touch() {
    let dir = temp_dir("watch_edit");
    let buggy = dir.join("bug.c");
    let other = dir.join("other.c");
    // §5: a raw MISCBUS read without the wait protocol.
    std::fs::write(
        &buggy,
        "void h(void) { PROC_DEFS(); PROC_PROLOGUE(); MISCBUS_READ_DB(a, b); }",
    )
    .unwrap();
    let other_src = "void quiet(void) { PROC_DEFS(); PROC_PROLOGUE(); x = 1; }";
    std::fs::write(&other, other_src).unwrap();

    let cache = dir.join("cache");
    let mut opts = args(&[
        "--builtin",
        "--cache-dir",
        cache.to_str().unwrap(),
        "--watch",
        "--watch-interval",
        "25",
        buggy.to_str().unwrap(),
        other.to_str().unwrap(),
    ]);
    opts.watch_iterations = Some(2);

    let editor = {
        let buggy = buggy.clone();
        let other = other.clone();
        std::thread::spawn(move || {
            // Give the first cycle time to complete and the poll to settle.
            std::thread::sleep(std::time::Duration::from_millis(300));
            // Timestamp-only change: same bytes, new mtime. Must NOT
            // trigger a check cycle.
            std::fs::write(&other, other_src).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(300));
            // The real edit: fix the bug. Triggers the second cycle.
            std::fs::write(
                &buggy,
                "void h(void) { PROC_DEFS(); PROC_PROLOGUE(); x = 1; }",
            )
            .unwrap();
        })
    };

    let mut out = Vec::new();
    run_watch(&opts, &mut out).unwrap();
    editor.join().unwrap();
    let text = String::from_utf8(out).unwrap();

    let cycles: Vec<&str> = text.lines().filter(|l| l.starts_with("[watch]")).collect();
    assert_eq!(
        cycles.len(),
        2,
        "exactly one initial cycle plus one edit-triggered cycle (the \
         timestamp-only touch must not add one): {text}"
    );
    assert!(
        cycles[0].contains("checked 2 file(s) (2 re-checked, 0 replayed): 1 report(s)"),
        "cold cycle checks everything and finds the bug: {text}"
    );
    assert!(
        cycles[1].contains("checked 2 file(s) (1 re-checked, 1 replayed): 0 report(s)"),
        "the fix cycle re-checks only the edited file and is clean: {text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The documented exit codes, pinned against the real binary:
/// 0 clean, 1 reports emitted, 2 usage error.
#[test]
fn binary_exit_codes_are_0_1_2() {
    let dir = temp_dir("exit_codes");
    let clean = dir.join("clean.c");
    std::fs::write(
        &clean,
        "void quiet(void) { PROC_DEFS(); PROC_PROLOGUE(); x = 1; }",
    )
    .unwrap();
    let buggy = dir.join("bug.c");
    std::fs::write(
        &buggy,
        "void h(void) { PROC_DEFS(); PROC_PROLOGUE(); MISCBUS_READ_DB(a, b); }",
    )
    .unwrap();
    let bin = env!("CARGO_BIN_EXE_mcheck");

    let ran = |extra: &[&str]| {
        Command::new(bin)
            .args(extra)
            .output()
            .expect("run mcheck")
            .status
            .code()
    };
    assert_eq!(ran(&["--builtin", clean.to_str().unwrap()]), Some(0));
    assert_eq!(ran(&["--builtin", buggy.to_str().unwrap()]), Some(1));
    assert_eq!(ran(&["--frobnicate"]), Some(2), "usage error");
    assert_eq!(
        ran(&["--builtin", "/nonexistent/x.c"]),
        Some(2),
        "I/O error"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite of the cache-cap feature: a cache squeezed far below the
/// working-set size keeps evicting records, and the reports stay
/// byte-identical to an uncached run — the cap may only cost speed.
#[test]
fn capped_cache_output_identical_to_uncached() {
    let dir = temp_dir("cap_eq");
    let mut files: Vec<String> = Vec::new();
    for i in 0..6 {
        let p = dir.join(format!("u{i}.c"));
        // Each unit: one §6 double free plus a clean helper.
        std::fs::write(
            &p,
            format!(
                "void helper{i}(void) {{ x = {i}; }}\n\
                 void PIRemoteGet{i}(void) {{ DB_FREE(); DB_FREE(); }}\n"
            ),
        )
        .unwrap();
        files.push(p.display().to_string());
    }
    let file_refs: Vec<&str> = files.iter().map(|s| s.as_str()).collect();

    let plain = {
        let mut a = vec!["--builtin"];
        a.extend(&file_refs);
        run(&args(&a)).unwrap()
    };
    assert!(!plain.is_empty(), "the corpus has reports to compare");

    let cache = dir.join("cache");
    let capped = {
        let mut a = vec![
            "--builtin",
            "--cache-dir",
            cache.to_str().unwrap(),
            // Far below the working set: every store round evicts.
            "--cache-cap-bytes",
            "700",
        ];
        a.extend(&file_refs);
        args(&a)
    };
    let cold = run(&capped).unwrap();
    let warm = run(&capped).unwrap();
    assert_eq!(cold, plain, "capped cold run matches uncached");
    assert_eq!(warm, plain, "capped warm run matches uncached");

    let total: u64 = std::fs::read_dir(&cache)
        .unwrap()
        .flatten()
        .map(|e| e.metadata().unwrap().len())
        .sum();
    assert!(total <= 700, "cap enforced on disk, found {total} bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cache format migration: records written by an older crate version (a
/// lower `"version"` tag) are silent misses — the run re-checks, never
/// errors — and after that one re-fill the next warm run is byte-identical
/// to the re-filled one.
#[test]
fn old_format_cache_records_are_silent_misses() {
    let dir = temp_dir("migrate");
    let src = dir.join("m.c");
    std::fs::write(
        &src,
        "void h(void) { PROC_DEFS(); PROC_PROLOGUE(); MISCBUS_READ_DB(a, b); }",
    )
    .unwrap();
    let cache = dir.join("cache");
    let opts = args(&[
        "--builtin",
        "--cache-dir",
        cache.to_str().unwrap(),
        src.to_str().unwrap(),
    ]);
    let render_run = || {
        let (mut out, mut err) = (Vec::new(), Vec::new());
        let code = run_full(&opts, &mut out, &mut err).unwrap();
        (code, String::from_utf8(out).unwrap())
    };

    let (code, cold) = render_run();
    assert_eq!(code, 1, "the bug is reported");
    assert!(
        cache.read_dir().unwrap().next().is_some(),
        "records written"
    );

    // Downgrade every record to the previous format version, as if left
    // behind by an older release sharing the cache directory.
    let cur = mc_driver::CACHE_FORMAT_VERSION;
    let prev = cur - 1;
    let mut downgraded = 0usize;
    for entry in cache.read_dir().unwrap().flatten() {
        let path = entry.path();
        let text = std::fs::read_to_string(&path).unwrap();
        let old = text
            .replace(
                &format!("\"version\": {cur}"),
                &format!("\"version\": {prev}"),
            )
            .replace(
                &format!("\"version\":{cur}"),
                &format!("\"version\":{prev}"),
            );
        if old != text {
            downgraded += 1;
        }
        std::fs::write(&path, old).unwrap();
    }
    assert!(downgraded > 0, "version tags found and rewritten");

    // The run over old records must succeed (miss, not error) and agree
    // byte-for-byte with the cold run; it re-fills the cache.
    let (code, refill) = render_run();
    assert_eq!(code, 1);
    assert_eq!(refill, cold, "old records degrade to a cold run");

    // Second warm run after the re-fill: byte-identical again.
    let (code, warm) = render_run();
    assert_eq!(code, 1);
    assert_eq!(warm, refill, "warm output byte-identical after re-fill");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--interproc` sees through a free-wrapper helper that the default
/// per-function run flags as a leak; warm interprocedural runs replay
/// byte-identically.
#[test]
fn interproc_resolves_wrapper_and_caches_identically() {
    let dir = temp_dir("interproc");
    let src = dir.join("w.c");
    std::fs::write(
        &src,
        "void free_wrapper(void) { DB_FREE(); }\n\
         void PILocalGet(void) { NI_SEND(t, F_DATA, k, w, d, n); free_wrapper(); }\n",
    )
    .unwrap();
    let s = src.to_str().unwrap();

    let without = run(&args(&["--builtin", s])).unwrap();
    assert!(
        without
            .iter()
            .any(|r| r.checker == "buffer_mgmt" && r.message.contains("leak")),
        "opaque call: the handler appears to leak: {without:?}"
    );

    let direct = run(&args(&["--builtin", "--interproc", s])).unwrap();
    assert!(
        direct.iter().all(|r| r.checker != "buffer_mgmt"),
        "summary sees the wrapper free: {direct:?}"
    );

    let cache = dir.join("cache");
    let cached = args(&[
        "--builtin",
        "--interproc",
        "--cache-dir",
        cache.to_str().unwrap(),
        s,
    ]);
    let cold = run(&cached).unwrap();
    let warm = run(&cached).unwrap();
    assert_eq!(cold, direct, "cached interproc cold == direct");
    assert_eq!(warm, direct, "cached interproc warm == direct");
    let _ = std::fs::remove_dir_all(&dir);
}
